#include "export/protocols.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "arrowlite/builder.h"
#include "arrowlite/io.h"
#include "arrowlite/ipc.h"
#include "arrowlite/type.h"
#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "common/timer.h"
#include "storage/arrow_block_metadata.h"
#include "storage/block_access_controller.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "storage/storage_util.h"
#include "storage/varlen_entry.h"
#include "transaction/transaction_context.h"
#include "transaction/transaction_manager.h"
#include "transform/arrow_reader.h"

namespace mainline::exporter {

namespace {

using catalog::TypeId;
using storage::BlockState;
using storage::RawBlock;
using storage::TupleSlot;

/// Encode one value as protocol text into `out`; \return length.
int EncodeText(TypeId type, const byte *value, char *out, size_t out_size) {
  switch (type) {
    case TypeId::kBoolean:
    case TypeId::kTinyInt:
      return std::snprintf(out, out_size, "%d",
                           static_cast<int>(*reinterpret_cast<const int8_t *>(value)));
    case TypeId::kSmallInt:
      return std::snprintf(out, out_size, "%d",
                           static_cast<int>(*reinterpret_cast<const int16_t *>(value)));
    case TypeId::kInteger:
      return std::snprintf(out, out_size, "%d", *reinterpret_cast<const int32_t *>(value));
    case TypeId::kDate:
      return std::snprintf(out, out_size, "%u", *reinterpret_cast<const uint32_t *>(value));
    case TypeId::kBigInt:
      return std::snprintf(out, out_size, "%" PRId64,
                           *reinterpret_cast<const int64_t *>(value));
    case TypeId::kTimestamp:
      return std::snprintf(out, out_size, "%" PRIu64,
                           *reinterpret_cast<const uint64_t *>(value));
    case TypeId::kDecimal:
      return std::snprintf(out, out_size, "%.6f", *reinterpret_cast<const double *>(value));
    case TypeId::kVarchar:
      MAINLINE_UNREACHABLE("varchar handled separately");
  }
  return 0;
}

/// Visit every visible tuple of the table, with the frozen-block fast path:
/// frozen blocks are read in place under the block read lock, other blocks
/// through a transactional snapshot. `visit(slot_values, row_from_block)` is
/// called with a full-row ProjectedRow.
template <typename Visit>
std::pair<uint64_t, uint64_t> ForEachRow(catalog::SqlTable *table,
                                         transaction::TransactionManager *txn_manager,
                                         Visit visit) {
  storage::DataTable &data_table = table->UnderlyingTable();
  const storage::ProjectedRowInitializer &initializer = data_table.FullRowInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  uint64_t frozen_blocks = 0, hot_blocks = 0;

  for (RawBlock *block : data_table.Blocks()) {
    if (block->controller.TryAcquireRead()) {
      frozen_blocks++;
      const uint32_t n = block->arrow_metadata == nullptr
                             ? 0
                             : block->arrow_metadata->NumRecords();
      for (uint32_t i = 0; i < n; i++) {
        storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
        for (uint16_t c = 0; c < row->NumColumns(); c++) {
          storage::StorageUtil::CopyAttrIntoProjection(data_table.Accessor(),
                                                       TupleSlot(block, i), row, c);
        }
        visit(*row);
      }
      block->controller.ReleaseRead();
    } else {
      hot_blocks++;
      transaction::TransactionContext *txn = txn_manager->BeginTransaction();
      const uint32_t limit = block->insert_head.load(std::memory_order_acquire);
      for (uint32_t i = 0; i < limit; i++) {
        storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
        if (!data_table.Select(txn, TupleSlot(block, i), row)) continue;
        visit(*row);
      }
      txn_manager->Commit(txn);
    }
  }
  return {frozen_blocks, hot_blocks};
}

/// Client-side parse of the text protocol back into a columnar batch — the
/// step Figure 1 shows dominating export cost.
std::shared_ptr<arrowlite::RecordBatch> ParsePostgresWire(const catalog::Schema &schema,
                                                          const byte *data, uint64_t size) {
  std::vector<arrowlite::FixedBuilder<int64_t>> ints;
  std::vector<arrowlite::FixedBuilder<double>> doubles;
  std::vector<arrowlite::StringBuilder> strings;
  std::vector<std::pair<int, size_t>> dispatch;
  for (uint16_t i = 0; i < schema.NumColumns(); i++) {
    switch (schema.GetColumn(i).Type()) {
      case TypeId::kDecimal:
        dispatch.emplace_back(1, doubles.size());
        doubles.emplace_back(arrowlite::Type::kFloat64);
        break;
      case TypeId::kVarchar:
        dispatch.emplace_back(2, strings.size());
        strings.emplace_back();
        break;
      default:
        dispatch.emplace_back(0, ints.size());
        ints.emplace_back(arrowlite::Type::kInt64);
        break;
    }
  }

  uint64_t pos = 0;
  int64_t rows = 0;
  while (pos < size) {
    const char tag = static_cast<char>(data[pos]);
    pos += 1;
    if (tag == 'T') {  // row description: skip its length-prefixed payload
      uint32_t len;
      std::memcpy(&len, data + pos, 4);
      pos += 4 + len;
      continue;
    }
    if (tag != 'D') break;
    uint16_t ncols;
    std::memcpy(&ncols, data + pos, 2);
    pos += 2;
    for (uint16_t c = 0; c < ncols; c++) {
      int32_t len;
      std::memcpy(&len, data + pos, 4);
      pos += 4;
      auto [kind, idx] = dispatch[c];
      if (len < 0) {
        if (kind == 0) {
          ints[idx].AppendNull();
        } else if (kind == 1) {
          doubles[idx].AppendNull();
        } else {
          strings[idx].AppendNull();
        }
        continue;
      }
      const char *text = reinterpret_cast<const char *>(data + pos);
      pos += static_cast<uint64_t>(len);
      if (kind == 0) {
        int64_t v = 0;
        std::from_chars(text, text + len, v);
        ints[idx].Append(v);
      } else if (kind == 1) {
        doubles[idx].Append(std::strtod(std::string(text, static_cast<size_t>(len)).c_str(),
                                        nullptr));
      } else {
        strings[idx].Append({text, static_cast<size_t>(len)});
      }
    }
    rows++;
  }

  std::vector<arrowlite::Field> fields;
  std::vector<std::shared_ptr<arrowlite::Array>> columns;
  for (uint16_t i = 0; i < schema.NumColumns(); i++) {
    auto [kind, idx] = dispatch[i];
    if (kind == 0) {
      fields.emplace_back(schema.GetColumn(i).Name(), arrowlite::Type::kInt64);
      columns.push_back(ints[idx].Finish());
    } else if (kind == 1) {
      fields.emplace_back(schema.GetColumn(i).Name(), arrowlite::Type::kFloat64);
      columns.push_back(doubles[idx].Finish());
    } else {
      fields.emplace_back(schema.GetColumn(i).Name(), arrowlite::Type::kString);
      columns.push_back(strings[idx].Finish());
    }
  }
  return std::make_shared<arrowlite::RecordBatch>(
      std::make_shared<arrowlite::Schema>(std::move(fields)), rows, std::move(columns));
}

}  // namespace

ExportResult PostgresWireExporter::Export(catalog::SqlTable *table,
                                          transaction::TransactionManager *txn_manager) {
  client_->Reset();
  ExportResult result;
  const catalog::Schema &schema = table->GetSchema();
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&result.micros);
    // RowDescription: 'T' + length + per-column name.
    {
      arrowlite::VectorSink desc;
      for (const catalog::Column &col : schema.Columns()) {
        desc.Write(reinterpret_cast<const byte *>(col.Name().data()), col.Name().size() + 1);
      }
      client_->WriteValue<char>('T');
      client_->WriteValue<uint32_t>(static_cast<uint32_t>(desc.data().size()));
      client_->Write(desc.data().data(), desc.data().size());
    }

    char text[64];
    auto [frozen, hot] = ForEachRow(table, txn_manager, [&](const storage::ProjectedRow &row) {
      client_->WriteValue<char>('D');
      client_->WriteValue<uint16_t>(row.NumColumns());
      for (uint16_t c = 0; c < row.NumColumns(); c++) {
        const byte *value = row.AccessWithNullCheck(c);
        if (value == nullptr) {
          client_->WriteValue<int32_t>(-1);
          continue;
        }
        const TypeId type = schema.GetColumn(c).Type();
        if (type == TypeId::kVarchar) {
          const auto *entry = reinterpret_cast<const storage::VarlenEntry *>(value);
          client_->WriteValue<int32_t>(static_cast<int32_t>(entry->Size()));
          client_->Write(entry->Content(), entry->Size());
        } else {
          const int len = EncodeText(type, value, text, sizeof(text));
          client_->WriteValue<int32_t>(len);
          client_->Write(reinterpret_cast<const byte *>(text), static_cast<uint64_t>(len));
        }
      }
      result.rows++;
    });
    result.frozen_blocks = frozen;
    result.hot_blocks = hot;
    // Client side: parse the wire text back into a columnar batch.
    client_batch_ = ParsePostgresWire(schema, client_->data(), client_->size());
  }
  result.wire_bytes = client_->size();
  return result;
}

ExportResult VectorizedWireExporter::Export(catalog::SqlTable *table,
                                            transaction::TransactionManager *txn_manager) {
  client_->Reset();
  ExportResult result;
  const catalog::Schema &schema = table->GetSchema();
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&result.micros);
    // Server: serialize per-row into column-chunked messages of ~2048 rows.
    constexpr uint32_t kChunkRows = 2048;
    std::vector<std::vector<byte>> fixed_chunks(schema.NumColumns());
    std::vector<std::vector<byte>> varlen_chunks(schema.NumColumns());
    std::vector<std::vector<uint8_t>> null_flags(schema.NumColumns());
    uint32_t chunk_rows = 0;

    auto flush_chunk = [&] {
      if (chunk_rows == 0) return;
      client_->WriteValue<char>('V');
      client_->WriteValue<uint32_t>(chunk_rows);
      for (uint16_t c = 0; c < schema.NumColumns(); c++) {
        client_->Write(reinterpret_cast<const byte *>(null_flags[c].data()),
                       null_flags[c].size());
        const auto &payload =
            schema.GetColumn(c).IsVarlen() ? varlen_chunks[c] : fixed_chunks[c];
        client_->WriteValue<uint64_t>(payload.size());
        client_->Write(payload.data(), payload.size());
        fixed_chunks[c].clear();
        varlen_chunks[c].clear();
        null_flags[c].clear();
      }
      chunk_rows = 0;
    };

    auto [frozen, hot] = ForEachRow(table, txn_manager, [&](const storage::ProjectedRow &row) {
      for (uint16_t c = 0; c < row.NumColumns(); c++) {
        const byte *value = row.AccessWithNullCheck(c);
        null_flags[c].push_back(value == nullptr ? 1 : 0);
        if (value == nullptr) {
          if (!schema.GetColumn(c).IsVarlen()) {
            fixed_chunks[c].insert(fixed_chunks[c].end(), schema.GetColumn(c).AttrSize(),
                                   byte{0});
          }
          continue;
        }
        if (schema.GetColumn(c).IsVarlen()) {
          const auto *entry = reinterpret_cast<const storage::VarlenEntry *>(value);
          const uint32_t size = entry->Size();
          const auto *size_bytes = reinterpret_cast<const byte *>(&size);
          varlen_chunks[c].insert(varlen_chunks[c].end(), size_bytes, size_bytes + 4);
          varlen_chunks[c].insert(varlen_chunks[c].end(), entry->Content(),
                                  entry->Content() + size);
        } else {
          fixed_chunks[c].insert(fixed_chunks[c].end(), value,
                                 value + schema.GetColumn(c).AttrSize());
        }
      }
      result.rows++;
      if (++chunk_rows == kChunkRows) flush_chunk();
    });
    flush_chunk();
    result.frozen_blocks = frozen;
    result.hot_blocks = hot;

    // Client side: reassemble arrays from the chunked wire format.
    {
      std::vector<arrowlite::FixedBuilder<uint64_t>> fixed8;
      std::vector<arrowlite::FixedBuilder<uint32_t>> fixed4;
      std::vector<arrowlite::FixedBuilder<uint16_t>> fixed2;
      std::vector<arrowlite::FixedBuilder<uint8_t>> fixed1;
      std::vector<arrowlite::StringBuilder> strings;
      std::vector<std::pair<int, size_t>> dispatch;
      for (uint16_t c = 0; c < schema.NumColumns(); c++) {
        const catalog::Column &col = schema.GetColumn(c);
        if (col.IsVarlen()) {
          dispatch.emplace_back(4, strings.size());
          strings.emplace_back();
        } else if (col.AttrSize() == 8) {
          dispatch.emplace_back(3, fixed8.size());
          fixed8.emplace_back(arrowlite::Type::kUInt64);
        } else if (col.AttrSize() == 4) {
          dispatch.emplace_back(2, fixed4.size());
          fixed4.emplace_back(arrowlite::Type::kUInt32);
        } else if (col.AttrSize() == 2) {
          dispatch.emplace_back(1, fixed2.size());
          fixed2.emplace_back(arrowlite::Type::kUInt16);
        } else {
          dispatch.emplace_back(0, fixed1.size());
          fixed1.emplace_back(arrowlite::Type::kUInt8);
        }
      }
      const byte *data = client_->data();
      uint64_t pos = 0;
      int64_t rows = 0;
      while (pos < client_->size()) {
        pos += 1;  // 'V'
        uint32_t n;
        std::memcpy(&n, data + pos, 4);
        pos += 4;
        rows += n;
        for (uint16_t c = 0; c < schema.NumColumns(); c++) {
          const uint8_t *nulls = reinterpret_cast<const uint8_t *>(data + pos);
          pos += n;
          uint64_t payload_size;
          std::memcpy(&payload_size, data + pos, 8);
          pos += 8;
          const byte *payload = data + pos;
          pos += payload_size;
          auto [kind, idx] = dispatch[c];
          uint64_t off = 0;
          for (uint32_t r = 0; r < n; r++) {
            const bool null = nulls[r] != 0;
            switch (kind) {
              case 0:
                if (null) {
                  fixed1[idx].AppendNull();
                } else {
                  fixed1[idx].Append(*reinterpret_cast<const uint8_t *>(payload + off));
                }
                off += 1;
                break;
              case 1:
                if (null) {
                  fixed2[idx].AppendNull();
                } else {
                  uint16_t v;
                  std::memcpy(&v, payload + off, 2);
                  fixed2[idx].Append(v);
                }
                off += 2;
                break;
              case 2:
                if (null) {
                  fixed4[idx].AppendNull();
                } else {
                  uint32_t v;
                  std::memcpy(&v, payload + off, 4);
                  fixed4[idx].Append(v);
                }
                off += 4;
                break;
              case 3:
                if (null) {
                  fixed8[idx].AppendNull();
                } else {
                  uint64_t v;
                  std::memcpy(&v, payload + off, 8);
                  fixed8[idx].Append(v);
                }
                off += 8;
                break;
              case 4: {
                if (null) {
                  strings[idx].AppendNull();
                  break;
                }
                uint32_t len;
                std::memcpy(&len, payload + off, 4);
                off += 4;
                strings[idx].Append(
                    {reinterpret_cast<const char *>(payload + off), len});
                off += len;
                break;
              }
            }
          }
        }
      }
      std::vector<arrowlite::Field> fields;
      std::vector<std::shared_ptr<arrowlite::Array>> columns;
      for (uint16_t c = 0; c < schema.NumColumns(); c++) {
        auto [kind, idx] = dispatch[c];
        fields.emplace_back(schema.GetColumn(c).Name(),
                            kind == 4 ? arrowlite::Type::kString
                                      : transform::ArrowReader::ToArrowType(
                                            schema.GetColumn(c).Type()));
        switch (kind) {
          case 0:
            columns.push_back(fixed1[idx].Finish());
            break;
          case 1:
            columns.push_back(fixed2[idx].Finish());
            break;
          case 2:
            columns.push_back(fixed4[idx].Finish());
            break;
          case 3:
            columns.push_back(fixed8[idx].Finish());
            break;
          case 4:
            columns.push_back(strings[idx].Finish());
            break;
        }
      }
      client_batch_ = std::make_shared<arrowlite::RecordBatch>(
          std::make_shared<arrowlite::Schema>(std::move(fields)), rows, std::move(columns));
    }
  }
  result.wire_bytes = client_->size();
  return result;
}

ExportResult ArrowFlightExporter::Export(catalog::SqlTable *table,
                                         transaction::TransactionManager *txn_manager) {
  client_->Reset();
  client_batches_.clear();
  ExportResult result;
  const catalog::Schema &schema = table->GetSchema();
  storage::DataTable &data_table = table->UnderlyingTable();
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&result.micros);
    auto arrow_schema = transform::ArrowReader::ToArrowSchema(schema);
    arrowlite::IpcStreamWriter writer(client_, *arrow_schema);
    for (RawBlock *block : data_table.Blocks()) {
      if (block->controller.TryAcquireRead()) {
        // Zero-copy: the block's buffers go onto the wire verbatim.
        result.frozen_blocks++;
        auto batch = transform::ArrowReader::FromFrozenBlock(schema, data_table, block);
        if (batch != nullptr) {
          writer.WriteBatch(*batch);
          result.rows += static_cast<uint64_t>(batch->num_rows());
        }
        block->controller.ReleaseRead();
      } else {
        // Hot block: materialize a transactional snapshot first.
        result.hot_blocks++;
        transaction::TransactionContext *txn = txn_manager->BeginTransaction();
        auto batch =
            transform::ArrowReader::MaterializeBlock(schema, &data_table, block, txn);
        txn_manager->Commit(txn);
        writer.WriteBatch(*batch);
        result.rows += static_cast<uint64_t>(batch->num_rows());
      }
    }
    writer.Close();
    // Client side: land the stream (no per-value parsing).
    arrowlite::SpanSource source(client_->data(), client_->size());
    arrowlite::IpcStreamReader reader(&source);
    while (auto batch = reader.ReadNext()) client_batches_.push_back(std::move(batch));
  }
  result.wire_bytes = client_->size();
  return result;
}

ExportResult RdmaExporter::Export(catalog::SqlTable *table,
                                  transaction::TransactionManager *txn_manager) {
  client_->Reset();
  ExportResult result;
  const catalog::Schema &schema = table->GetSchema();
  storage::DataTable &data_table = table->UnderlyingTable();
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&result.micros);
    auto write_batch_raw = [&](const arrowlite::RecordBatch &batch) {
      for (int c = 0; c < batch.num_columns(); c++) {
        const arrowlite::Array &array = *batch.column(c);
        if (array.validity() != nullptr) {
          client_->Write(array.validity()->data(), array.validity()->size());
        }
        client_->Write(array.buffer(0)->data(), array.buffer(0)->size());
        if (array.type() == arrowlite::Type::kString) {
          client_->Write(array.buffer(1)->data(), array.buffer(1)->size());
        } else if (array.type() == arrowlite::Type::kDictionary) {
          const arrowlite::Array &dict = *array.dictionary();
          client_->Write(dict.buffer(0)->data(), dict.buffer(0)->size());
          client_->Write(dict.buffer(1)->data(), dict.buffer(1)->size());
        }
      }
      result.rows += static_cast<uint64_t>(batch.num_rows());
    };

    for (RawBlock *block : data_table.Blocks()) {
      if (block->controller.TryAcquireRead()) {
        // One-sided transfer of the block's Arrow buffers into client
        // memory: no serialization, no framing, no server-side encode.
        result.frozen_blocks++;
        auto batch = transform::ArrowReader::FromFrozenBlock(schema, data_table, block);
        if (batch != nullptr) write_batch_raw(*batch);
        block->controller.ReleaseRead();
      } else {
        result.hot_blocks++;
        transaction::TransactionContext *txn = txn_manager->BeginTransaction();
        auto batch =
            transform::ArrowReader::MaterializeBlock(schema, &data_table, block, txn);
        txn_manager->Commit(txn);
        write_batch_raw(*batch);
      }
    }
  }
  result.wire_bytes = client_->size();
  return result;
}

}  // namespace mainline::exporter
