#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "common/typedefs.h"
#include "index/index.h"
#include "catalog/sql_table.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"

namespace mainline::catalog {

/// A minimal catalog: owns tables (and registered indexes), resolves names
/// and oids, and provides the table resolver the log serializer needs.
class Catalog {
 public:
  explicit Catalog(storage::BlockStore *block_store) : block_store_(block_store) {}

  DISALLOW_COPY_AND_MOVE(Catalog)

  ~Catalog();

  /// Create a new table.
  /// \return the new table's oid.
  table_oid_t CreateTable(const std::string &name, const Schema &schema);

  /// \return the table with the given oid, or nullptr.
  catalog::SqlTable *GetTable(table_oid_t oid);

  /// \return the table with the given name, or nullptr.
  catalog::SqlTable *GetTable(const std::string &name);

  /// \return oid for `name`, or table_oid_t(0) if absent.
  table_oid_t GetTableOid(const std::string &name);

  /// Register an index (ownership transfers to the catalog).
  /// \return the new index's oid.
  index_oid_t RegisterIndex(const std::string &name, table_oid_t table,
                            std::unique_ptr<index::Index> index);

  /// \return the index with the given name, or nullptr.
  index::Index *GetIndex(const std::string &name);

  /// \return all (oid, table) pairs, for recovery and export.
  std::unordered_map<table_oid_t, storage::DataTable *> TableMap();

  storage::BlockStore *GetBlockStore() { return block_store_; }

 private:
  struct TableEntry {
    std::string name;
    std::unique_ptr<catalog::SqlTable> table;
  };
  struct IndexEntry {
    std::string name;
    table_oid_t table;
    std::unique_ptr<index::Index> index;
  };

  storage::BlockStore *block_store_;
  common::SpinLatch latch_;
  uint32_t next_table_oid_ GUARDED_BY(latch_) = 1;
  uint32_t next_index_oid_ GUARDED_BY(latch_) = 1;
  std::unordered_map<table_oid_t, TableEntry> tables_ GUARDED_BY(latch_);
  std::unordered_map<std::string, table_oid_t> table_names_ GUARDED_BY(latch_);
  std::unordered_map<index_oid_t, IndexEntry> indexes_ GUARDED_BY(latch_);
  std::unordered_map<std::string, index_oid_t> index_names_ GUARDED_BY(latch_);
};

}  // namespace mainline::catalog
