#include "catalog/catalog.h"

#include "index/index.h"
#include "storage/data_table.h"

namespace mainline::catalog {

Catalog::~Catalog() = default;

table_oid_t Catalog::CreateTable(const std::string &name, const Schema &schema) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  MAINLINE_ASSERT(table_names_.find(name) == table_names_.end(), "table already exists");
  const table_oid_t oid(next_table_oid_++);
  tables_.emplace(oid, TableEntry{name, std::make_unique<catalog::SqlTable>(
                                            block_store_, schema, oid)});
  table_names_.emplace(name, oid);
  return oid;
}

catalog::SqlTable *Catalog::GetTable(table_oid_t oid) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  const auto it = tables_.find(oid);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

catalog::SqlTable *Catalog::GetTable(const std::string &name) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  const auto it = table_names_.find(name);
  return it == table_names_.end() ? nullptr : tables_.at(it->second).table.get();
}

table_oid_t Catalog::GetTableOid(const std::string &name) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  const auto it = table_names_.find(name);
  return it == table_names_.end() ? table_oid_t(0) : it->second;
}

index_oid_t Catalog::RegisterIndex(const std::string &name, table_oid_t table,
                                   std::unique_ptr<index::Index> index) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  const index_oid_t oid(next_index_oid_++);
  indexes_.emplace(oid, IndexEntry{name, table, std::move(index)});
  index_names_.emplace(name, oid);
  return oid;
}

index::Index *Catalog::GetIndex(const std::string &name) {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  const auto it = index_names_.find(name);
  return it == index_names_.end() ? nullptr : indexes_.at(it->second).index.get();
}

std::unordered_map<table_oid_t, storage::DataTable *> Catalog::TableMap() {
  common::SpinLatch::ScopedSpinLatch guard(&latch_);
  std::unordered_map<table_oid_t, storage::DataTable *> result;
  for (auto &[oid, entry] : tables_) result.emplace(oid, &entry.table->UnderlyingTable());
  return result;
}

}  // namespace mainline::catalog
