#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "storage/block_layout.h"

namespace mainline::catalog {

/// SQL value types supported by the engine.
enum class TypeId : uint8_t {
  kBoolean = 0,
  kTinyInt,
  kSmallInt,
  kInteger,
  kBigInt,
  kDecimal,    // stored as double
  kDate,       // days since epoch, uint32
  kTimestamp,  // microseconds since epoch, uint64
  kVarchar,    // stored as a 16-byte VarlenEntry
};

/// \return the storage footprint in bytes of a value of type `type`.
constexpr uint16_t TypeSize(TypeId type) {
  switch (type) {
    case TypeId::kBoolean:
    case TypeId::kTinyInt:
      return 1;
    case TypeId::kSmallInt:
      return 2;
    case TypeId::kInteger:
    case TypeId::kDate:
      return 4;
    case TypeId::kBigInt:
    case TypeId::kDecimal:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kVarchar:
      return 16;  // VarlenEntry
  }
  return 0;
}

/// \return true if values of `type` are variable-length.
constexpr bool TypeIsVarlen(TypeId type) { return type == TypeId::kVarchar; }

/// \return a human-readable name for `type`.
const char *TypeName(TypeId type);

/// One column of a SQL table definition.
class Column {
 public:
  Column(std::string name, TypeId type, bool nullable = false)
      : name_(std::move(name)), type_(type), nullable_(nullable) {}

  const std::string &Name() const { return name_; }
  TypeId Type() const { return type_; }
  bool Nullable() const { return nullable_; }
  uint16_t AttrSize() const { return TypeSize(type_); }
  bool IsVarlen() const { return TypeIsVarlen(type_); }

 private:
  std::string name_;
  TypeId type_;
  bool nullable_;
};

/// An ordered collection of columns. Schema column position `i` maps onto
/// physical column id `i` of the block layout (the version pointer and
/// bitmaps live outside the column id space).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const Column &GetColumn(uint16_t i) const { return columns_[i]; }
  uint16_t NumColumns() const { return static_cast<uint16_t>(columns_.size()); }
  const std::vector<Column> &Columns() const { return columns_; }

  /// Position of the column named `name`.
  /// \return column index, or -1 if absent.
  int32_t ColumnIndex(const std::string &name) const {
    for (uint16_t i = 0; i < columns_.size(); i++) {
      if (columns_[i].Name() == name) return i;
    }
    return -1;
  }

  /// Resolve column names to schema positions, sorted ascending — the shape
  /// scan projections (execution::TableScanner, ProjectedRowInitializer)
  /// expect. An unknown name aborts in every build: silently narrowing a
  /// projection would make queries return wrong answers with no diagnostic.
  std::vector<uint16_t> ResolveColumns(const std::vector<std::string> &names) const {
    std::vector<uint16_t> positions;
    positions.reserve(names.size());
    for (const std::string &name : names) {
      const int32_t idx = ColumnIndex(name);
      if (idx < 0) {
        std::fprintf(stderr, "FATAL: unknown column \"%s\" in projection\n", name.c_str());
        std::abort();
      }
      positions.push_back(static_cast<uint16_t>(idx));
    }
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()), positions.end());
    return positions;
  }

  /// Derive the physical block layout for this schema.
  storage::BlockLayout ToBlockLayout() const {
    std::vector<storage::ColumnSpec> specs;
    specs.reserve(columns_.size());
    for (const Column &col : columns_) specs.push_back({col.AttrSize(), col.IsVarlen()});
    return storage::BlockLayout(specs);
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace mainline::catalog
