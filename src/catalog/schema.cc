#include "catalog/schema.h"

namespace mainline::catalog {

const char *TypeName(TypeId type) {
  switch (type) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kTinyInt:
      return "TINYINT";
    case TypeId::kSmallInt:
      return "SMALLINT";
    case TypeId::kInteger:
      return "INTEGER";
    case TypeId::kBigInt:
      return "BIGINT";
    case TypeId::kDecimal:
      return "DECIMAL";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
    case TypeId::kVarchar:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

}  // namespace mainline::catalog
