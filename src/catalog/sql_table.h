#pragma once

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "common/typedefs.h"
#include "logging/log_record.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "transaction/transaction_context.h"

namespace mainline::catalog {

/// The typed table abstraction over storage::DataTable: maps a catalog
/// Schema onto a block layout (schema column `i` == physical column id `i`),
/// and stages write-ahead log records for every modification when logging is
/// enabled. Lives in catalog/ because it is the point where schemas meet
/// storage — the raw block layer below knows nothing about either.
class SqlTable {
 public:
  SqlTable(storage::BlockStore *store, const Schema &schema, table_oid_t oid)
      : schema_(schema),
        oid_(oid),
        table_(store, schema.ToBlockLayout(), storage::layout_version_t(0)) {}

  DISALLOW_COPY_AND_MOVE(SqlTable)

  /// Insert `redo` and stage its log record.
  /// \return the slot of the new tuple.
  storage::TupleSlot Insert(transaction::TransactionContext *txn,
                            const storage::ProjectedRow &redo) {
    const storage::TupleSlot slot = table_.Insert(txn, redo);
    if (txn->LoggingEnabled()) {
      logging::LogRecord *record = txn->StageWriteCopy(oid_, true, redo);
      record->GetUnderlyingRecordBodyAs<logging::RedoRecord>()->SetSlot(slot);
    }
    return slot;
  }

  /// Update `slot` with the attributes in `delta`.
  /// \return true on success; false on write-write conflict (caller aborts).
  bool Update(transaction::TransactionContext *txn, storage::TupleSlot slot,
              const storage::ProjectedRow &delta) {
    if (!table_.Update(txn, slot, delta)) return false;
    if (txn->LoggingEnabled()) {
      logging::LogRecord *record = txn->StageWriteCopy(oid_, false, delta);
      record->GetUnderlyingRecordBodyAs<logging::RedoRecord>()->SetSlot(slot);
    }
    return true;
  }

  /// Delete `slot`.
  /// \return true on success; false on conflict (caller aborts).
  bool Delete(transaction::TransactionContext *txn, storage::TupleSlot slot) {
    if (!table_.Delete(txn, slot)) return false;
    if (txn->LoggingEnabled()) txn->StageDelete(oid_, slot);
    return true;
  }

  /// Materialize the visible version of `slot` into `out_buffer`.
  bool Select(transaction::TransactionContext *txn, storage::TupleSlot slot,
              storage::ProjectedRow *out_buffer) const {
    return table_.Select(txn, slot, out_buffer);
  }

  /// Build an initializer projecting the given schema columns (by position).
  storage::ProjectedRowInitializer InitializerForColumns(
      const std::vector<uint16_t> &cols) const {
    std::vector<storage::col_id_t> ids;
    ids.reserve(cols.size());
    for (const uint16_t c : cols) ids.emplace_back(c);
    return storage::ProjectedRowInitializer::Create(table_.GetLayout(), ids);
  }

  /// Initializer covering all columns.
  storage::ProjectedRowInitializer FullInitializer() const {
    return storage::ProjectedRowInitializer::CreateFull(table_.GetLayout());
  }

  storage::DataTable &UnderlyingTable() { return table_; }
  const storage::DataTable &UnderlyingTable() const { return table_; }
  const Schema &GetSchema() const { return schema_; }
  table_oid_t Oid() const { return oid_; }
  storage::DataTable::SlotIterator begin() const { return table_.begin(); }

 private:
  Schema schema_;
  table_oid_t oid_;
  storage::DataTable table_;
};

}  // namespace mainline::catalog
