#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string>

namespace mainline::common {

/// Fast, seedable PRNG (xorshift128+). Deterministic across platforms so
/// workload generators are reproducible.
class Xorshift {
 public:
  explicit Xorshift(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 to spread the seed over both words.
    for (auto &s : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Uniform(uint64_t lo, uint64_t hi) { return lo + Next() % (hi - lo + 1); }

  /// Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// TPC-C NURand non-uniform distribution.
  uint64_t NuRand(uint64_t a, uint64_t x, uint64_t y, uint64_t c) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string with length in [lo, hi].
  std::string AlphaString(uint32_t lo, uint32_t hi) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    const uint32_t len = static_cast<uint32_t>(Uniform(lo, hi));
    std::string result(len, '\0');
    for (auto &ch : result) ch = kChars[Next() % (sizeof(kChars) - 1)];
    return result;
  }

  /// Random numeric string with length in [lo, hi].
  std::string NumericString(uint32_t lo, uint32_t hi) {
    const uint32_t len = static_cast<uint32_t>(Uniform(lo, hi));
    std::string result(len, '\0');
    for (auto &ch : result) ch = static_cast<char>('0' + Next() % 10);
    return result;
  }

 private:
  uint64_t state_[2];
};

/// Zipfian distribution over [0, n) with skew theta, using the Gray et al.
/// rejection-free method. Used by synthetic hot/cold workloads.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta) : n_(n), theta_(theta) {
    for (uint64_t i = 1; i <= n; i++) zeta_n_ += 1.0 / std::pow(static_cast<double>(i), theta);
    zeta_2_ = 1.0 + 1.0 / std::pow(2.0, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta_2_ / zeta_n_);
  }

  uint64_t Next(Xorshift *rng) {
    const double u = rng->UniformDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < zeta_2_) return 1;
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  uint64_t n_;
  double theta_;
  double zeta_n_ = 0.0;
  double zeta_2_;
  double alpha_;
  double eta_;
};

}  // namespace mainline::common
