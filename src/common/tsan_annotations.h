#pragma once

// Dynamic ThreadSanitizer annotations for the engine's *intentional* data
// races.
//
// The MVCC protocol reads hot-block bytes without synchronization BY DESIGN
// (the paper's in-place update scheme): a reader first copies possibly-torn
// bytes out of the block, then resolves what it actually keeps through the
// version chain — writers install their undo record (seq_cst CAS on the
// slot's version pointer) BEFORE touching the block, and commit timestamps
// are published with release/acquire, so every byte a reader ultimately
// *uses* is ordered by those atomics. TSan cannot see the "discarded or
// repaired afterwards" half of the protocol and reports the raw copy as a
// race.
//
// Policy (README "Correctness tooling"): such sites are annotated HERE, in
// code, next to the protocol comment that justifies them — never silenced in
// tsan_suppressions.txt, which stays empty of engine symbols so that any
// *new* report is loud. Keep regions as narrow as the protocol allows: an
// ignore scope suppresses race checks on plain accesses inside it (atomic
// synchronization is still tracked), so an over-wide scope can hide real
// bugs.
//
// The Annotate* entry points are exported by the TSan runtime itself;
// outside TSan builds everything here compiles to nothing.

#if defined(__SANITIZE_THREAD__)
#define MAINLINE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MAINLINE_TSAN 1
#endif
#endif

#ifdef MAINLINE_TSAN
extern "C" {
void AnnotateIgnoreReadsBegin(const char *file, int line);
void AnnotateIgnoreReadsEnd(const char *file, int line);
}
#define MAINLINE_TSAN_IGNORE_READS_BEGIN() AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define MAINLINE_TSAN_IGNORE_READS_END() AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
#else
#define MAINLINE_TSAN_IGNORE_READS_BEGIN() ((void)0)
#define MAINLINE_TSAN_IGNORE_READS_END() ((void)0)
#endif

namespace mainline::common {

/// RAII scope marking a documented torn-read region: plain reads inside it
/// are exempt from TSan race checks. Every use must sit next to a comment
/// explaining which protocol makes the racy read safe. Scopes nest.
class TsanIgnoreReadsScope {
 public:
  TsanIgnoreReadsScope() { MAINLINE_TSAN_IGNORE_READS_BEGIN(); }
  ~TsanIgnoreReadsScope() { MAINLINE_TSAN_IGNORE_READS_END(); }
  TsanIgnoreReadsScope(const TsanIgnoreReadsScope &) = delete;
  TsanIgnoreReadsScope &operator=(const TsanIgnoreReadsScope &) = delete;
};

}  // namespace mainline::common
