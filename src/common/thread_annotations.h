#pragma once

// Clang thread-safety (capability) analysis annotations.
//
// These macros expose Clang's static lock-checking attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) under the names the
// engine uses everywhere. Under any other compiler they expand to nothing, so
// GCC builds are unaffected; a Clang build configured with
// -DMAINLINE_THREAD_SAFETY=ON turns every annotation into a compile-time
// check (-Wthread-safety -Werror=thread-safety).
//
// Vocabulary:
//   * CAPABILITY("mutex")   — marks a class as a lockable capability
//                             (SpinLatch, SharedLatch, Mutex).
//   * SCOPED_CAPABILITY     — marks an RAII guard whose constructor acquires
//                             and destructor releases a capability.
//   * GUARDED_BY(mu)        — a field that may only be accessed while `mu`
//                             is held (shared for reads, exclusive for
//                             writes).
//   * PT_GUARDED_BY(mu)     — like GUARDED_BY, but protects the pointee of a
//                             pointer/smart-pointer field.
//   * REQUIRES(mu)          — callers must hold `mu` exclusively before
//                             calling; REQUIRES_SHARED allows a read lock.
//   * ACQUIRE/RELEASE       — the function acquires/releases the capability
//                             (shared variants for reader locks).
//   * TRY_ACQUIRE(b)        — like ACQUIRE, but only when the function
//                             returns `b`.
//   * EXCLUDES(mu)          — callers must NOT hold `mu` (the function takes
//                             it internally; prevents self-deadlock).
//   * NO_THREAD_SAFETY_ANALYSIS — opts a function out, for locking protocols
//                             the analysis cannot express (e.g. the B+-tree's
//                             hand-over-hand crabbing). Every use must carry
//                             a comment justifying why.

#if defined(__clang__)
#define MAINLINE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MAINLINE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) MAINLINE_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MAINLINE_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) MAINLINE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MAINLINE_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) MAINLINE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MAINLINE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) MAINLINE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) MAINLINE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) MAINLINE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) MAINLINE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MAINLINE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) MAINLINE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) MAINLINE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) MAINLINE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) MAINLINE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) MAINLINE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MAINLINE_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) MAINLINE_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) MAINLINE_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS MAINLINE_THREAD_ANNOTATION(no_thread_safety_analysis)
