#pragma once

#include <cassert>
#include <cstdint>

namespace mainline {

/// Assert that fires in debug builds only. `message` documents the invariant.
#define MAINLINE_ASSERT(expr, message) assert((expr) && (message))

/// Marks a code path that must never be reached.
#define MAINLINE_UNREACHABLE(message) \
  do {                                \
    assert(false && (message));      \
    __builtin_unreachable();          \
  } while (0)

/// Disallow copy construction and copy assignment for the given class.
#define DISALLOW_COPY(cname)          \
  cname(const cname &) = delete;      \
  cname &operator=(const cname &) = delete;

/// Disallow move construction and move assignment for the given class.
#define DISALLOW_MOVE(cname)     \
  cname(cname &&) = delete;      \
  cname &operator=(cname &&) = delete;

/// Disallow both copying and moving.
#define DISALLOW_COPY_AND_MOVE(cname) \
  DISALLOW_COPY(cname)                \
  DISALLOW_MOVE(cname)

/// Hint to the branch predictor.
#define LIKELY(x) __builtin_expect(!!(x), 1)
#define UNLIKELY(x) __builtin_expect(!!(x), 0)

/// Size of a cache line on the target architecture, for alignment of
/// contended atomics.
constexpr uint32_t kCacheLineSize = 64;

}  // namespace mainline
