#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace mainline::common {

/// A selection vector in the MonetDB/X100 candidate-list style: the row
/// indices of a vector batch that survive the predicates applied so far.
/// Refinement compacts in place and branch-free, so a filter chain costs one
/// predictable linear pass per predicate regardless of selectivity, and
/// downstream operators only ever touch qualifying rows.
///
/// Indices are kept in ascending batch order, which lets aggregates that care
/// about floating-point reproducibility accumulate in the same order as a
/// tuple-at-a-time scan of the same rows.
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(uint32_t capacity) { sel_.resize(capacity); }

  /// Reset to the identity selection over `n` rows (all selected).
  void InitFull(uint32_t n) {
    if (sel_.size() < n) sel_.resize(n);
    for (uint32_t i = 0; i < n; i++) sel_[i] = i;
    size_ = n;
  }

  /// Keep only the selected rows for which `pred(row_index)` is true.
  /// Compaction is branch-free: every candidate is written unconditionally
  /// and the write cursor advances by the predicate's 0/1 result, so the
  /// loop has no data-dependent branches for the predictor to miss.
  template <typename Pred>
  void Refine(Pred &&pred) {
    uint32_t k = 0;
    for (uint32_t i = 0; i < size_; i++) {
      const uint32_t row = sel_[i];
      sel_[k] = row;
      k += static_cast<uint32_t>(static_cast<bool>(pred(row)));
    }
    size_ = k;
  }

  /// Invoke `fn(row_index)` for every selected row, in ascending order.
  template <typename Fn>
  void ForEach(Fn &&fn) const {
    for (uint32_t i = 0; i < size_; i++) fn(sel_[i]);
  }

  /// \return number of selected rows.
  uint32_t Size() const { return size_; }

  bool Empty() const { return size_ == 0; }

  /// \return the i-th selected row index.
  uint32_t operator[](uint32_t i) const {
    MAINLINE_ASSERT(i < size_, "selection index out of range");
    return sel_[i];
  }

  const uint32_t *Data() const { return sel_.data(); }
  const uint32_t *begin() const { return sel_.data(); }
  const uint32_t *end() const { return sel_.data() + size_; }

 private:
  std::vector<uint32_t> sel_;
  uint32_t size_ = 0;
};

}  // namespace mainline::common
