#pragma once

#include <atomic>

#include "common/cpu_relax.h"
#include "common/macros.h"

namespace mainline::common {

/// A cheap test-and-test-and-set spin latch for very short critical sections
/// (e.g. the commit critical section in the transaction manager).
class SpinLatch {
 public:
  SpinLatch() = default;
  DISALLOW_COPY_AND_MOVE(SpinLatch)

  /// Acquire the latch, spinning until it is available.
  void Lock() {
    while (true) {
      if (!latch_.exchange(true, std::memory_order_acquire)) return;
      while (latch_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  /// \return true if the latch was acquired without blocking.
  bool TryLock() { return !latch_.exchange(true, std::memory_order_acquire); }

  /// Release the latch.
  void Unlock() { latch_.store(false, std::memory_order_release); }

  /// RAII guard for SpinLatch.
  class ScopedSpinLatch {
   public:
    explicit ScopedSpinLatch(SpinLatch *latch) : latch_(latch) { latch_->Lock(); }
    DISALLOW_COPY_AND_MOVE(ScopedSpinLatch)
    ~ScopedSpinLatch() { latch_->Unlock(); }

   private:
    SpinLatch *latch_;
  };

 private:
  std::atomic<bool> latch_{false};
};

}  // namespace mainline::common
