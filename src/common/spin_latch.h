#pragma once

#include <atomic>

#include "common/cpu_relax.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace mainline::common {

/// A cheap test-and-test-and-set spin latch for very short critical sections
/// (e.g. the commit critical section in the transaction manager).
///
/// Memory-ordering protocol (audited; every atomic op's ordering is paired
/// with the op it synchronizes against):
///
///  * Lock/TryLock `exchange(true, acquire)` — the RMW's atomicity alone
///    gives mutual exclusion; `acquire` makes it pair with the `release`
///    store in Unlock, so everything the previous holder wrote inside the
///    critical section happens-before everything the new holder does. On the
///    failed path the exchange writes `true` over `true`, which is harmless.
///  * Unlock `store(false, release)` — a release store is a one-way fence:
///    no read or write of the critical section may sink below it.
///  * The inner spin `load(relaxed)` — deliberately relaxed: it carries no
///    data, only a hint that the latch *might* be free. Correctness is
///    re-established by the acquiring exchange that follows; using acquire
///    here would add fence traffic on the contended path for nothing.
class CAPABILITY("mutex") SpinLatch {
 public:
  SpinLatch() = default;
  DISALLOW_COPY_AND_MOVE(SpinLatch)

  /// Acquire the latch, spinning until it is available.
  void Lock() ACQUIRE() {
    while (true) {
      if (!latch_.exchange(true, std::memory_order_acquire)) return;
      // relaxed: spin-wait peek — only a hint that the latch might be free
      // (see the class comment); the acquiring exchange above re-establishes
      // ordering before any protected data is touched.
      while (latch_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  /// \return true if the latch was acquired without blocking.
  bool TryLock() TRY_ACQUIRE(true) { return !latch_.exchange(true, std::memory_order_acquire); }

  /// Release the latch.
  void Unlock() RELEASE() { latch_.store(false, std::memory_order_release); }

  /// RAII guard for SpinLatch.
  class SCOPED_CAPABILITY ScopedSpinLatch {
   public:
    explicit ScopedSpinLatch(SpinLatch *latch) ACQUIRE(latch) : latch_(latch) { latch_->Lock(); }
    DISALLOW_COPY_AND_MOVE(ScopedSpinLatch)
    ~ScopedSpinLatch() RELEASE() { latch_->Unlock(); }

   private:
    SpinLatch *latch_;
  };

 private:
  std::atomic<bool> latch_{false};
};

}  // namespace mainline::common
