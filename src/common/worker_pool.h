#pragma once

#include <atomic>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/pool_telemetry.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace mainline::common {

/// A fixed-size pool of worker threads consuming a shared task queue.
/// Used by benchmarks and the parallel transformation pipeline.
class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_workers) {
    for (uint32_t i = 0; i < num_workers; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  DISALLOW_COPY_AND_MOVE(WorkerPool)

  ~WorkerPool() { Shutdown(); }

  /// Enqueue a task for execution.
  /// \return true if the task was accepted; false if the pool has shut down.
  ///         A task enqueued after Shutdown would never run (the workers are
  ///         gone), so a later WaitUntilAllFinished would block forever —
  ///         rejecting it here is what keeps that call deadlock-free.
  bool SubmitTask(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexGuard lock(&mutex_);
      if (shutdown_) return false;
      tasks_.push(Task{Timer(), std::move(task)});
      outstanding_++;
    }
    task_cv_.NotifyOne();
    return true;
  }

  /// Block until every submitted task has finished.
  void WaitUntilAllFinished() EXCLUDES(mutex_) {
    MutexGuard lock(&mutex_);
    while (outstanding_ != 0) done_cv_.Wait(&lock);
  }

  /// Stop accepting tasks and join all workers. Pending tasks are drained.
  void Shutdown() EXCLUDES(mutex_) {
    {
      MutexGuard lock(&mutex_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    task_cv_.NotifyAll();
    for (auto &w : workers_) w.join();
    workers_.clear();
  }

  uint32_t NumWorkers() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mutex_) {
    while (true) {
      Task task;
      {
        MutexGuard lock(&mutex_);
        while (!shutdown_ && tasks_.empty()) task_cv_.Wait(&lock);
        if (tasks_.empty()) {
          if (shutdown_) return;
          continue;
        }
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      PoolTelemetry::TaskStarted(task.enqueued.Elapsed<>());
      task.fn();
      {
        // Notify while still holding the mutex: a waiter between its
        // predicate check and its sleep also holds it, so the decrement and
        // the notification cannot slip into that gap and strand the waiter.
        MutexGuard lock(&mutex_);
        outstanding_--;
        done_cv_.NotifyAll();
      }
    }
  }

  /// A queued task remembers when it was submitted so the worker that
  /// dequeues it can report the submit → start latency (pool.queue_wait_us).
  struct Task {
    Timer enqueued;
    std::function<void()> fn;
  };

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<Task> tasks_ GUARDED_BY(mutex_);
  ConditionVariable task_cv_;
  ConditionVariable done_cv_;
  uint64_t outstanding_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace mainline::common
