#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/timer.h"
#include "metrics/engine_metrics.h"

namespace mainline::common {

/// A fixed-size pool of worker threads consuming a shared task queue.
/// Used by benchmarks and the parallel transformation pipeline.
class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_workers) {
    for (uint32_t i = 0; i < num_workers; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  DISALLOW_COPY_AND_MOVE(WorkerPool)

  ~WorkerPool() { Shutdown(); }

  /// Enqueue a task for execution.
  /// \return true if the task was accepted; false if the pool has shut down.
  ///         A task enqueued after Shutdown would never run (the workers are
  ///         gone), so a later WaitUntilAllFinished would block forever —
  ///         rejecting it here is what keeps that call deadlock-free.
  bool SubmitTask(std::function<void()> task) {
    {
      std::lock_guard lock(mutex_);
      if (shutdown_) return false;
      tasks_.push(Task{Timer(), std::move(task)});
      outstanding_++;
    }
    task_cv_.notify_one();
    return true;
  }

  /// Block until every submitted task has finished.
  void WaitUntilAllFinished() {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Stop accepting tasks and join all workers. Pending tasks are drained.
  void Shutdown() {
    {
      std::lock_guard lock(mutex_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    task_cv_.notify_all();
    for (auto &w : workers_) w.join();
    workers_.clear();
  }

  uint32_t NumWorkers() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop() {
    while (true) {
      Task task;
      {
        std::unique_lock lock(mutex_);
        task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          if (shutdown_) return;
          continue;
        }
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      {
        metrics::PoolMetrics &pool_metrics = metrics::Pool();
        pool_metrics.queue_wait_us->Observe(task.enqueued.Elapsed<>());
        pool_metrics.tasks_run->Add(1);
      }
      task.fn();
      {
        // Notify while still holding the mutex: a waiter between its
        // predicate check and its sleep also holds it, so the decrement and
        // the notification cannot slip into that gap and strand the waiter.
        std::lock_guard lock(mutex_);
        outstanding_--;
        done_cv_.notify_all();
      }
    }
  }

  /// A queued task remembers when it was submitted so the worker that
  /// dequeues it can report the submit → start latency (pool.queue_wait_us).
  struct Task {
    Timer enqueued;
    std::function<void()> fn;
  };

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  uint64_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace mainline::common
