#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace mainline::common {

/// A type-safe wrapper around an integral value. Distinct `Tag` types produce
/// distinct, non-convertible C++ types, which prevents accidentally passing,
/// say, a table oid where a column id is expected.
///
/// The wrapper is a trivially copyable value type with the same size as the
/// underlying integer.
template <class Tag, typename IntType>
class StrongTypedef {
 public:
  using underlying_type = IntType;

  StrongTypedef() = default;
  constexpr explicit StrongTypedef(IntType value) : value_(value) {}

  /// \return the raw underlying value.
  constexpr IntType UnderlyingValue() const { return value_; }

  constexpr bool operator==(const StrongTypedef &other) const = default;
  constexpr auto operator<=>(const StrongTypedef &other) const = default;

  StrongTypedef &operator++() {
    ++value_;
    return *this;
  }

  StrongTypedef operator++(int) {
    StrongTypedef result = *this;
    ++value_;
    return result;
  }

  constexpr StrongTypedef operator+(IntType delta) const { return StrongTypedef(value_ + delta); }
  constexpr StrongTypedef operator-(IntType delta) const { return StrongTypedef(value_ - delta); }

  friend std::ostream &operator<<(std::ostream &os, const StrongTypedef &t) {
    return os << t.value_;
  }

 private:
  IntType value_;
};

}  // namespace mainline::common

namespace std {
/// Hash support so strong typedefs can key unordered containers.
template <class Tag, typename IntType>
struct hash<mainline::common::StrongTypedef<Tag, IntType>> {
  size_t operator()(const mainline::common::StrongTypedef<Tag, IntType> &v) const {
    return hash<IntType>()(v.UnderlyingValue());
  }
};
}  // namespace std

/// Declares a new strong typedef named `name` over integral type `underlying`.
#define STRONG_TYPEDEF(name, underlying)                                  \
  struct name##_tag_ {};                                                  \
  using name = ::mainline::common::StrongTypedef<name##_tag_, underlying>
