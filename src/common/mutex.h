#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace mainline::common {

/// An annotated wrapper over std::mutex.
///
/// libstdc++'s std::mutex carries no capability attributes, so Clang's
/// thread-safety analysis cannot see through a raw `std::mutex` member or a
/// `std::lock_guard` — fields "guarded by" one would warn on every access.
/// The engine therefore never declares a bare std::mutex (lint.py enforces
/// this): blocking sections use this wrapper, spin sections use SpinLatch,
/// and reader-writer sections use SharedLatch.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  DISALLOW_COPY_AND_MOVE(Mutex)

  void Lock() ACQUIRE() { inner_.lock(); }
  bool TryLock() TRY_ACQUIRE(true) { return inner_.try_lock(); }
  void Unlock() RELEASE() { inner_.unlock(); }

 private:
  friend class MutexGuard;
  std::mutex inner_;
};

/// RAII guard for Mutex. Holds a std::unique_lock internally so a
/// ConditionVariable can wait on it (atomically releasing and reacquiring
/// the capability — invisible to the analysis, which models the guard as
/// continuously held, matching what the critical-section code may assume).
class SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex *mutex) ACQUIRE(mutex) : lock_(mutex->inner_) {}
  DISALLOW_COPY_AND_MOVE(MutexGuard)
  ~MutexGuard() RELEASE() = default;

 private:
  friend class ConditionVariable;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexGuard. Waits must be wrapped in the
/// usual predicate re-check loop by the caller — the explicit `while` form
/// keeps every guarded-field access lexically inside the MutexGuard scope,
/// which is exactly what the thread-safety analysis can verify (a predicate
/// lambda handed to std::condition_variable::wait would be opaque to it).
class ConditionVariable {
 public:
  ConditionVariable() = default;
  DISALLOW_COPY_AND_MOVE(ConditionVariable)

  /// Release `guard`'s mutex, sleep until notified, reacquire. Spurious
  /// wakeups are possible; callers re-check their predicate in a loop.
  void Wait(MutexGuard *guard) { cv_.wait(guard->lock_); }

  /// Like Wait, but returns after `timeout` even if not notified.
  /// \return false if the wait timed out.
  template <class Rep, class Period>
  bool WaitFor(MutexGuard *guard, const std::chrono::duration<Rep, Period> &timeout) {
    return cv_.wait_for(guard->lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mainline::common
