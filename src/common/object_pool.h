#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"

namespace mainline::common {

/// A thread-safe pool of reusable heap objects.
///
/// Undo/redo buffer segments and 1 MB blocks are allocated at a high rate;
/// recycling them through a pool avoids malloc churn on the transaction
/// critical path. `Allocator` must provide `T *New()`, `void Reuse(T *)` and
/// `void Delete(T *)`.
///
/// The pool keeps at most `reuse_limit` free objects; beyond that, released
/// objects are deleted. `size_limit` caps the total number of objects handed
/// out plus cached (0 = unlimited).
template <typename T, class Allocator>
class ObjectPool {
 public:
  explicit ObjectPool(uint64_t size_limit = 0, uint64_t reuse_limit = 64)
      : size_limit_(size_limit), reuse_limit_(reuse_limit) {}

  DISALLOW_COPY_AND_MOVE(ObjectPool)

  ~ObjectPool() {
    for (T *obj : reuse_queue_) alloc_.Delete(obj);
  }

  /// Acquire an object, reusing a cached one if available.
  /// \return a ready-to-use object, or nullptr if the pool is at its size
  /// limit.
  T *Get() {
    {
      SpinLatch::ScopedSpinLatch guard(&latch_);
      if (!reuse_queue_.empty()) {
        T *result = reuse_queue_.back();
        reuse_queue_.pop_back();
        alloc_.Reuse(result);
        return result;
      }
      if (size_limit_ != 0 && current_size_ >= size_limit_) return nullptr;
      current_size_++;
    }
    return alloc_.New();
  }

  /// Return an object to the pool.
  void Release(T *obj) {
    SpinLatch::ScopedSpinLatch guard(&latch_);
    if (reuse_queue_.size() < reuse_limit_) {
      reuse_queue_.push_back(obj);
    } else {
      alloc_.Delete(obj);
      current_size_--;
    }
  }

  /// \return number of live objects (handed out + cached). Taken under the
  /// latch: a concurrent Get/Release is mid-update, and an unlatched read
  /// would be a (benign-looking but real) data race on current_size_.
  uint64_t CurrentSize() const EXCLUDES(latch_) {
    SpinLatch::ScopedSpinLatch guard(&latch_);
    return current_size_;
  }

 private:
  Allocator alloc_;
  mutable SpinLatch latch_;
  std::vector<T *> reuse_queue_ GUARDED_BY(latch_);
  uint64_t size_limit_;
  uint64_t reuse_limit_;
  uint64_t current_size_ GUARDED_BY(latch_) = 0;
};

}  // namespace mainline::common
