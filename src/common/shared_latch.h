#pragma once

#include <shared_mutex>

#include "common/macros.h"

namespace mainline::common {

/// Reader-writer latch. Thin wrapper over std::shared_mutex with RAII guards
/// named after the database convention (shared = read, exclusive = write).
class SharedLatch {
 public:
  SharedLatch() = default;
  DISALLOW_COPY_AND_MOVE(SharedLatch)

  void LockExclusive() { latch_.lock(); }
  void LockShared() { latch_.lock_shared(); }
  bool TryLockExclusive() { return latch_.try_lock(); }
  bool TryLockShared() { return latch_.try_lock_shared(); }
  void UnlockExclusive() { latch_.unlock(); }
  void UnlockShared() { latch_.unlock_shared(); }

  /// RAII shared (read) guard.
  class ScopedSharedLatch {
   public:
    explicit ScopedSharedLatch(SharedLatch *latch) : latch_(latch) { latch_->LockShared(); }
    DISALLOW_COPY_AND_MOVE(ScopedSharedLatch)
    ~ScopedSharedLatch() { latch_->UnlockShared(); }

   private:
    SharedLatch *latch_;
  };

  /// RAII exclusive (write) guard.
  class ScopedExclusiveLatch {
   public:
    explicit ScopedExclusiveLatch(SharedLatch *latch) : latch_(latch) { latch_->LockExclusive(); }
    DISALLOW_COPY_AND_MOVE(ScopedExclusiveLatch)
    ~ScopedExclusiveLatch() { latch_->UnlockExclusive(); }

   private:
    SharedLatch *latch_;
  };

 private:
  std::shared_mutex latch_;
};

}  // namespace mainline::common
