#pragma once

#include <shared_mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace mainline::common {

/// Reader-writer latch. Thin wrapper over std::shared_mutex with RAII guards
/// named after the database convention (shared = read, exclusive = write).
///
/// Annotated as a capability so Clang's thread-safety analysis distinguishes
/// read locks (GUARDED_BY fields may be read) from write locks (fields may
/// be written); libstdc++'s std::shared_mutex itself carries no annotations.
class CAPABILITY("mutex") SharedLatch {
 public:
  SharedLatch() = default;
  DISALLOW_COPY_AND_MOVE(SharedLatch)

  void LockExclusive() ACQUIRE() { latch_.lock(); }
  void LockShared() ACQUIRE_SHARED() { latch_.lock_shared(); }
  bool TryLockExclusive() TRY_ACQUIRE(true) { return latch_.try_lock(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) { return latch_.try_lock_shared(); }
  void UnlockExclusive() RELEASE() { latch_.unlock(); }
  void UnlockShared() RELEASE_SHARED() { latch_.unlock_shared(); }

  /// RAII shared (read) guard.
  class SCOPED_CAPABILITY ScopedSharedLatch {
   public:
    explicit ScopedSharedLatch(SharedLatch *latch) ACQUIRE_SHARED(latch) : latch_(latch) {
      latch_->LockShared();
    }
    DISALLOW_COPY_AND_MOVE(ScopedSharedLatch)
    ~ScopedSharedLatch() RELEASE_GENERIC() { latch_->UnlockShared(); }

   private:
    SharedLatch *latch_;
  };

  /// RAII exclusive (write) guard.
  class SCOPED_CAPABILITY ScopedExclusiveLatch {
   public:
    explicit ScopedExclusiveLatch(SharedLatch *latch) ACQUIRE(latch) : latch_(latch) {
      latch_->LockExclusive();
    }
    DISALLOW_COPY_AND_MOVE(ScopedExclusiveLatch)
    ~ScopedExclusiveLatch() RELEASE() { latch_->UnlockExclusive(); }

   private:
    SharedLatch *latch_;
  };

 private:
  std::shared_mutex latch_;
};

}  // namespace mainline::common
