#pragma once

#include <chrono>
#include <cstdint>

#include "common/macros.h"

namespace mainline::common {

/// Measures wall-clock time of a scope and writes the elapsed duration (in
/// the template unit, default microseconds) to the output pointer on
/// destruction.
template <typename Unit = std::chrono::microseconds>
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t *elapsed)
      : start_(std::chrono::high_resolution_clock::now()), elapsed_(elapsed) {}

  DISALLOW_COPY_AND_MOVE(ScopedTimer)

  ~ScopedTimer() {
    const auto end = std::chrono::high_resolution_clock::now();
    *elapsed_ = static_cast<uint64_t>(std::chrono::duration_cast<Unit>(end - start_).count());
  }

 private:
  std::chrono::high_resolution_clock::time_point start_;
  uint64_t *elapsed_;
};

}  // namespace mainline::common
