#pragma once

#include <atomic>
#include <cstdint>

namespace mainline::common {

/// Telemetry hook for WorkerPool, so the pool can report task flow without
/// common/ depending on the metrics layer above it. The metrics module
/// installs its sink from a static registrar in engine_metrics.cc; any
/// binary that links the metrics objects gets pool.* accounting, and one
/// that does not simply runs with the hook empty. Install is idempotent and
/// may race with TaskStarted: the acquire/release pair orders the sink's
/// own initialization before workers can call through it.
class PoolTelemetry {
 public:
  /// \param queue_wait_us submit → start latency of the dequeued task
  using Sink = void (*)(uint64_t queue_wait_us);

  /// Install the process-wide sink. Passing nullptr uninstalls it.
  static void Install(Sink sink) {
    sink_.store(sink, std::memory_order_release);
  }

  /// Called by a worker immediately before running a dequeued task.
  static void TaskStarted(uint64_t queue_wait_us) {
    Sink sink = sink_.load(std::memory_order_acquire);
    if (sink != nullptr) sink(queue_wait_us);
  }

 private:
  static inline std::atomic<Sink> sink_{nullptr};
};

}  // namespace mainline::common
