#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/macros.h"

namespace mainline::common {

/// Number of bytes needed to store `n` bits, rounded up to an 8-byte boundary
/// as the Arrow format requires for validity bitmaps.
constexpr uint32_t BitmapSize(uint32_t n) { return ((n + 63) / 64) * 8; }

/// A bitmap overlaid on raw memory, with thread-safe (CAS-based) bit flips.
///
/// This class has no state of its own: it is a view that reinterprets a
/// caller-provided region. Used for block allocation bitmaps and per-column
/// validity (null) bitmaps, which the storage layer concurrently mutates.
/// The physical layout (LSB-first within each byte) matches Arrow's validity
/// bitmap encoding so frozen blocks can expose these bits directly.
class RawConcurrentBitmap {
 public:
  RawConcurrentBitmap() = delete;
  DISALLOW_COPY_AND_MOVE(RawConcurrentBitmap)

  /// Reinterpret the region starting at `ptr` as a bitmap.
  static RawConcurrentBitmap *Interpret(void *ptr) {
    return reinterpret_cast<RawConcurrentBitmap *>(ptr);
  }

  /// Zero out the first `num_bits` bits (rounded up to whole words).
  void Clear(uint32_t num_bits) { std::memset(bits_, 0, BitmapSize(num_bits)); }

  /// \return the value of bit `pos`.
  bool Test(uint32_t pos) const {
    return (WordFor(pos).load(std::memory_order_acquire) >> BitOffset(pos)) & 1u;
  }

  /// \return the value of bit `pos`, without any memory ordering.
  bool TestRelaxed(uint32_t pos) const {
    // relaxed: callers opt into a hint read (slot probing); any decision
    // based on it is re-validated by an acquiring read or CAS before use.
    return (WordFor(pos).load(std::memory_order_relaxed) >> BitOffset(pos)) & 1u;
  }

  /// Atomically flip bit `pos` from `expected_value` to its negation.
  /// \return true if this thread performed the flip, false if the bit did not
  ///         have the expected value (i.e. another thread raced us).
  bool Flip(uint32_t pos, bool expected_value) {
    std::atomic<uint64_t> &word = WordFor(pos);
    const uint64_t mask = uint64_t{1} << BitOffset(pos);
    // relaxed: just the seed for the CAS loop; the acq_rel
    // compare_exchange below is what synchronizes (and re-reads on failure).
    uint64_t old_word = word.load(std::memory_order_relaxed);
    while (true) {
      const bool current = (old_word & mask) != 0;
      if (current != expected_value) return false;
      const uint64_t new_word = old_word ^ mask;
      if (word.compare_exchange_weak(old_word, new_word, std::memory_order_acq_rel)) return true;
    }
  }

  /// Unconditionally set bit `pos` to `value` (atomic, last writer wins).
  void Set(uint32_t pos, bool value) {
    std::atomic<uint64_t> &word = WordFor(pos);
    const uint64_t mask = uint64_t{1} << BitOffset(pos);
    if (value) {
      word.fetch_or(mask, std::memory_order_acq_rel);
    } else {
      word.fetch_and(~mask, std::memory_order_acq_rel);
    }
  }

  /// Find the first position >= `start_pos` and < `end_pos` whose bit is 0.
  /// \return true and stores the position in `out` if found.
  bool FirstUnsetPos(uint32_t end_pos, uint32_t start_pos, uint32_t *out) const {
    for (uint32_t i = start_pos; i < end_pos; i++) {
      if (!Test(i)) {
        *out = i;
        return true;
      }
    }
    return false;
  }

  /// Count the number of set bits among the first `num_bits` bits.
  uint32_t CountSet(uint32_t num_bits) const {
    uint32_t count = 0;
    const uint32_t num_words = (num_bits + 63) / 64;
    for (uint32_t w = 0; w < num_words; w++) {
      // relaxed: a population count over a bitmap others may be flipping is
      // inherently approximate; all that is needed is tear-free word reads.
      uint64_t word = reinterpret_cast<const std::atomic<uint64_t> *>(bits_)[w].load(
          std::memory_order_relaxed);
      if ((w + 1) * 64 > num_bits) {
        const uint32_t valid = num_bits - w * 64;
        word &= (valid == 64) ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
      }
      count += static_cast<uint32_t>(__builtin_popcountll(word));
    }
    return count;
  }

  /// Raw byte access (for zero-copy export of validity bitmaps).
  const uint8_t *Bytes() const { return reinterpret_cast<const uint8_t *>(bits_); }

 private:
  std::atomic<uint64_t> &WordFor(uint32_t pos) {
    return reinterpret_cast<std::atomic<uint64_t> *>(bits_)[pos / 64];
  }
  const std::atomic<uint64_t> &WordFor(uint32_t pos) const {
    return reinterpret_cast<const std::atomic<uint64_t> *>(bits_)[pos / 64];
  }
  static uint32_t BitOffset(uint32_t pos) { return pos % 64; }

  uint8_t bits_[0];
};

}  // namespace mainline::common
