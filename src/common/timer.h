#pragma once

#include <chrono>
#include <cstdint>

#include "common/macros.h"

namespace mainline::common {

/// The one wall-clock the engine times with: std::chrono::steady_clock,
/// which is monotonic — never adjusted backwards by NTP or a suspend/resume
/// cycle, unlike high_resolution_clock (an alias for system_clock on some
/// standard libraries). The metrics layer, the plan profiler, the export
/// protocols, and the bench binaries all measure through this header, so
/// every reported duration is comparable.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Start (or restart) timing now.
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  static TimePoint Now() { return Clock::now(); }

  /// Elapsed time since construction/Restart, in the requested unit.
  template <typename Unit = std::chrono::microseconds>
  uint64_t Elapsed() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<Unit>(Clock::now() - start_).count());
  }

  /// Elapsed time as floating-point seconds (the bench reporting unit).
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  TimePoint start_;
};

/// Measures wall-clock time of a scope and writes the elapsed duration (in
/// the template unit, default microseconds) to the output pointer on
/// destruction.
template <typename Unit = std::chrono::microseconds>
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t *elapsed) : elapsed_(elapsed) {}

  DISALLOW_COPY_AND_MOVE(ScopedTimer)

  ~ScopedTimer() { *elapsed_ = timer_.Elapsed<Unit>(); }

 private:
  Timer timer_;
  uint64_t *elapsed_;
};

}  // namespace mainline::common
