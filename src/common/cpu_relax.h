#pragma once

namespace mainline::common {

/// Tell the CPU this thread is in a spin-wait loop: de-pipelines the core so
/// the spinning hyperthread stops starving its sibling and the eventual exit
/// from the loop is cheap. Every busy-wait in the engine (SpinLatch,
/// BlockAccessController's reader drain) funnels through this so the
/// architecture dispatch lives in exactly one place.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // Unknown architecture: a compiler barrier keeps the loop's load from
  // being hoisted, which is all correctness needs.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace mainline::common
