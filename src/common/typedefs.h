#pragma once

#include <cstddef>
#include <cstdint>

#include "common/strong_typedef.h"

namespace mainline {

/// Raw untyped storage byte. All storage-layer pointers into blocks are
/// expressed in terms of `byte *`.
using byte = std::byte;

namespace catalog {
/// Oid of a SQL table in the catalog.
STRONG_TYPEDEF(table_oid_t, uint32_t);
/// Oid of an index in the catalog.
STRONG_TYPEDEF(index_oid_t, uint32_t);
/// Oid of a database.
STRONG_TYPEDEF(db_oid_t, uint32_t);
/// Position of a column in a schema (user order).
STRONG_TYPEDEF(col_oid_t, uint16_t);
}  // namespace catalog

namespace storage {
/// Physical column id inside a block layout. The storage layer identifies
/// columns by these ids; the catalog maps schema columns onto them.
STRONG_TYPEDEF(col_id_t, uint16_t);
/// Version of a block layout (reserved for schema evolution).
STRONG_TYPEDEF(layout_version_t, uint32_t);
}  // namespace storage

namespace transaction {
/// A logical timestamp drawn from the global counter. The most significant
/// bit denotes an uncommitted transaction id: because all comparisons are
/// unsigned, uncommitted versions are never visible to any reader.
using timestamp_t = uint64_t;

/// Mask for the "uncommitted" sign bit described in Section 3.1 of the paper.
constexpr timestamp_t kUncommittedMask = timestamp_t{1} << 63;

/// Timestamp value that predates every transaction.
constexpr timestamp_t kInitialTimestamp = 0;

/// Sentinel for "no timestamp"; has the uncommitted bit set so it also
/// compares as never-visible.
constexpr timestamp_t kInvalidTimestamp = ~timestamp_t{0};

/// \return true if `t` is an uncommitted transaction id rather than a commit
/// timestamp.
constexpr bool IsUncommitted(timestamp_t t) { return (t & kUncommittedMask) != 0; }
}  // namespace transaction

}  // namespace mainline
