#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/macros.h"
#include "common/typedefs.h"
#include "storage/storage_defs.h"

namespace mainline::storage {
class DataTable;
}

namespace mainline::transaction {

class TransactionManager;

/// Rebuilds table contents from a serialized write-ahead log (Section 3.4).
///
/// The log contains no log sequence numbers: records are ordered implicitly
/// by their transaction's commit timestamp. Recovery therefore reads the
/// whole log, groups records by transaction, discards transactions without a
/// commit record (aborted or in-flight at the crash), and replays committed
/// transactions in commit-timestamp order.
///
/// TupleSlots in the log are physical addresses from the previous process
/// lifetime; the recovery manager remaps them to freshly inserted slots as it
/// replays.
class RecoveryManager {
 public:
  /// \param tables map from table oid to the (empty) table to replay into
  /// \param txn_manager transaction manager of the recovering instance (must
  ///        have logging disabled to avoid re-logging the replay)
  RecoveryManager(std::unordered_map<catalog::table_oid_t, storage::DataTable *> tables,
                  TransactionManager *txn_manager)
      : tables_(std::move(tables)), txn_manager_(txn_manager) {}

  DISALLOW_COPY_AND_MOVE(RecoveryManager)

  /// Replay the log at `log_file_path`.
  /// \return number of transactions replayed.
  uint64_t Recover(const std::string &log_file_path);

  /// \return the slot remapping built during the last Recover call (old
  /// physical slot -> new slot). Exposed for index rebuilds.
  const std::unordered_map<storage::TupleSlot, storage::TupleSlot> &SlotMap() const {
    return slot_map_;
  }

 private:
  std::unordered_map<catalog::table_oid_t, storage::DataTable *> tables_;
  TransactionManager *txn_manager_;
  std::unordered_map<storage::TupleSlot, storage::TupleSlot> slot_map_;
};

}  // namespace mainline::transaction
