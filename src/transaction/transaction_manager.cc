#include "transaction/transaction_manager.h"

#include <algorithm>

#include "logging/log_manager.h"
#include "logging/log_record.h"
#include "metrics/engine_metrics.h"
#include "storage/data_table.h"
#include "storage/storage_defs.h"
#include "storage/storage_util.h"
#include "storage/tuple_access_strategy.h"
#include "storage/undo_record.h"

namespace mainline::transaction {

TransactionManager::TransactionManager(storage::RecordBufferSegmentPool *buffer_pool,
                                       bool gc_enabled, logging::LogManager *log_manager)
    : buffer_pool_(buffer_pool), gc_enabled_(gc_enabled), log_manager_(log_manager) {
  if (log_manager_ != nullptr) {
    // The log manager sees only record vectors and opaque handles; this sink
    // turns a finished submission's handle back into its transaction and
    // forwards it to the GC queue.
    log_manager_->SetFinishedCallback(
        +[](void *context, void *handle) {
          static_cast<TransactionManager *>(context)->TransactionFinished(
              static_cast<TransactionContext *>(handle));
        },
        this);
  }
}

TransactionManager::~TransactionManager() {
  // Stop the flush thread and drain queued submissions while this manager
  // can still receive them; afterwards nothing submits (commits come only
  // from here), so the paired LogManager may be destroyed at leisure.
  if (log_manager_ != nullptr) log_manager_->Shutdown();
  for (TransactionContext *txn : completed_txns_) {
    // Aborted transactions' before-images still back live block data after
    // rollback; only committed ones own their old varlen values.
    if (!txn->Aborted()) {
      for (storage::UndoRecord *undo : txn->UndoRecords()) {
        storage::DataTable *table = undo->Table();
        if (table == nullptr || undo->Type() == storage::DeltaType::kInsert) continue;
        storage::StorageUtil::DeallocateVarlensInDelta(table->GetLayout(), *undo->Delta());
      }
    }
    delete txn;
  }
}

TransactionContext *TransactionManager::BeginTransaction() {
  timestamp_t start;
  {
    common::SpinLatch::ScopedSpinLatch guard(&curr_running_latch_);
    start = time_++;
    curr_running_.insert(start);
  }
  auto *txn = new TransactionContext(start, start | kUncommittedMask, buffer_pool_);
  txn->logging_enabled_ = log_manager_ != nullptr;
  metrics::Txn().begins->Add(1);
  return txn;
}

timestamp_t TransactionManager::Commit(TransactionContext *txn,
                                       logging::CommitRecord::DurabilityCallback callback,
                                       void *callback_arg) {
  MAINLINE_ASSERT(!txn->aborted_, "cannot commit an aborted transaction");
  // The contract is assert-enforced only: in NDEBUG builds a contract-
  // violating commit leaks the failed redo's varlens rather than freeing
  // them here, because loose_varlens_ cannot distinguish a failed write's
  // orphaned buffers from installed, table-owned ones (a retry that
  // succeeded registers the same buffer as table-owned) — freeing on this
  // path could turn a bounded leak into a use-after-free.
  MAINLINE_ASSERT(!txn->MustAbort(),
                  "a transaction whose write failed must abort (its failed redo's varlens are "
                  "reclaimed only by Abort)");
  timestamp_t commit_time;
  {
    // The small commit critical section of Section 3.1: obtain the commit
    // timestamp and stamp the delta records.
    common::SpinLatch::ScopedSpinLatch guard(&commit_latch_);
    commit_time = time_++;
    for (storage::UndoRecord *undo : txn->UndoRecords()) {
      undo->Timestamp().store(commit_time, std::memory_order_release);
    }
  }
  txn->finish_time_.store(commit_time, std::memory_order_release);
  txn->loose_varlens_.clear();  // committed values now owned by block storage

  if (log_manager_ != nullptr) {
    LogCommit(txn, commit_time, callback, callback_arg);
  } else if (callback != nullptr) {
    callback(callback_arg);
  }

  {
    common::SpinLatch::ScopedSpinLatch guard(&curr_running_latch_);
    curr_running_.erase(curr_running_.find(txn->StartTime()));
  }
  // With logging, the log manager forwards the transaction to the GC queue
  // only after its records are serialized, so the GC can never reclaim
  // varlen buffers the serializer still references.
  if (log_manager_ == nullptr) TransactionFinished(txn);
  metrics::Txn().commits->Add(1);
  return commit_time;
}

void TransactionManager::LogCommit(TransactionContext *txn, timestamp_t commit_time,
                                   logging::CommitRecord::DurabilityCallback callback,
                                   void *callback_arg) {
  byte *head = txn->ReserveCommitRecord();
  logging::LogRecord *record = logging::CommitRecord::Initialize(
      head, txn->StartTime(), commit_time, txn->IsReadOnly(), callback, callback_arg, txn);
  txn->redo_records_.push_back(record);
  log_manager_->Submit(logging::LogSubmission{&txn->RedoRecords(), txn});
}

timestamp_t TransactionManager::Abort(TransactionContext *txn) {
  Rollback(txn);
  // Stamp the undo records with a fresh, committed-looking timestamp
  // (Section 3.1): readers that copied the aborted version repair it by
  // applying the restored before-image; the records are never unlinked here,
  // which avoids the A-B-A race.
  const timestamp_t abort_time = time_++;
  for (storage::UndoRecord *undo : txn->UndoRecords()) {
    if (undo->Table() == nullptr) continue;
    undo->Timestamp().store(abort_time, std::memory_order_release);
  }
  // New varlen values written by this transaction were orphaned by the
  // rollback; uncommitted values are never visible, so free them now. A
  // caller that retried a failed write with the same redo may have
  // registered a buffer twice — dedup before freeing.
  std::sort(txn->loose_varlens_.begin(), txn->loose_varlens_.end());
  txn->loose_varlens_.erase(
      std::unique(txn->loose_varlens_.begin(), txn->loose_varlens_.end()),
      txn->loose_varlens_.end());
  for (const byte *varlen : txn->loose_varlens_) delete[] varlen;
  txn->loose_varlens_.clear();
  txn->aborted_ = true;
  txn->finish_time_.store(abort_time, std::memory_order_release);
  {
    common::SpinLatch::ScopedSpinLatch guard(&curr_running_latch_);
    curr_running_.erase(curr_running_.find(txn->StartTime()));
  }
  TransactionFinished(txn);
  metrics::Txn().aborts->Add(1);
  return abort_time;
}

void TransactionManager::Rollback(TransactionContext *txn) {
  // Restore before-images newest-first so repeated writes to one tuple
  // unwind correctly.
  auto &undos = txn->UndoRecords();
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    storage::UndoRecord *undo = *it;
    storage::DataTable *table = undo->Table();
    if (table == nullptr) continue;  // never installed
    const storage::TupleAccessStrategy &accessor = table->Accessor();
    switch (undo->Type()) {
      case storage::DeltaType::kUpdate:
        for (uint16_t i = 0; i < undo->Delta()->NumColumns(); i++) {
          storage::StorageUtil::CopyAttrFromProjection(accessor, undo->Slot(), *undo->Delta(),
                                                       i);
        }
        break;
      case storage::DeltaType::kInsert:
        accessor.SetDeallocated(undo->Slot());
        break;
      case storage::DeltaType::kDelete:
        accessor.SetAllocated(undo->Slot());
        break;
    }
  }
}

void TransactionManager::TransactionFinished(TransactionContext *txn) {
  common::SpinLatch::ScopedSpinLatch guard(&completed_latch_);
  completed_txns_.push_back(txn);
}

timestamp_t TransactionManager::OldestTransactionStartTime() {
  common::SpinLatch::ScopedSpinLatch guard(&curr_running_latch_);
  return curr_running_.empty() ? time_.load(std::memory_order_acquire) : *curr_running_.begin();
}

uint64_t TransactionManager::NumActiveTransactions() {
  common::SpinLatch::ScopedSpinLatch guard(&curr_running_latch_);
  return curr_running_.size();
}

std::vector<TransactionContext *> TransactionManager::CompletedTransactionsForGC() {
  common::SpinLatch::ScopedSpinLatch guard(&completed_latch_);
  std::vector<TransactionContext *> result;
  result.swap(completed_txns_);
  return result;
}

}  // namespace mainline::transaction
