#include "transaction/recovery_manager.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "logging/log_record.h"
#include "storage/block_layout.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/varlen_entry.h"
#include "transaction/transaction_context.h"
#include "transaction/transaction_manager.h"

namespace mainline::transaction {

namespace {

/// A parsed, engine-independent log record used only during replay.
struct ParsedRecord {
  logging::LogRecordType type;
  catalog::table_oid_t table_oid{0};
  storage::TupleSlot slot;
  bool is_insert = false;
  std::vector<storage::col_id_t> col_ids;
  // Parallel to col_ids: null flag and raw value bytes (varlen contents for
  // varlen columns).
  std::vector<bool> nulls;
  std::vector<std::vector<byte>> values;
};

struct ParsedTxn {
  std::vector<ParsedRecord> records;
  transaction::timestamp_t commit_ts = transaction::kInvalidTimestamp;
  bool committed = false;
};

class LogFileReader {
 public:
  explicit LogFileReader(const std::string &path) : in_(path, std::ios::binary) {}

  bool Good() const { return in_.good(); }

  template <typename T>
  bool Read(T *out) {
    in_.read(reinterpret_cast<char *>(out), sizeof(T));
    return in_.gcount() == sizeof(T);
  }

  bool ReadBytes(byte *out, uint64_t size) {
    in_.read(reinterpret_cast<char *>(out), static_cast<std::streamsize>(size));
    return in_.gcount() == static_cast<std::streamsize>(size);
  }

 private:
  std::ifstream in_;
};

}  // namespace

uint64_t RecoveryManager::Recover(const std::string &log_file_path) {
  LogFileReader reader(log_file_path);
  if (!reader.Good()) return 0;

  // Phase 1: parse the whole log, grouping records by transaction.
  std::unordered_map<transaction::timestamp_t, ParsedTxn> txns;
  while (true) {
    uint8_t type_byte;
    if (!reader.Read(&type_byte)) break;
    transaction::timestamp_t txn_begin;
    if (!reader.Read(&txn_begin)) break;
    ParsedTxn &txn = txns[txn_begin];
    const auto type = static_cast<logging::LogRecordType>(type_byte);
    switch (type) {
      case logging::LogRecordType::kRedo: {
        ParsedRecord record;
        record.type = type;
        uint32_t oid;
        uint64_t slot_bytes;
        uint8_t is_insert;
        uint16_t num_cols;
        if (!reader.Read(&oid) || !reader.Read(&slot_bytes) || !reader.Read(&is_insert) ||
            !reader.Read(&num_cols)) {
          return 0;  // truncated log tail: ignore incomplete record
        }
        record.table_oid = catalog::table_oid_t(oid);
        record.slot = storage::TupleSlot::FromRawBytes(slot_bytes);
        record.is_insert = is_insert != 0;
        const storage::DataTable *table = tables_.at(record.table_oid);
        const storage::BlockLayout &layout = table->GetLayout();
        record.col_ids.resize(num_cols);
        for (auto &col : record.col_ids) {
          uint16_t raw;
          if (!reader.Read(&raw)) return 0;
          col = storage::col_id_t(raw);
        }
        record.nulls.resize(num_cols);
        record.values.resize(num_cols);
        for (uint16_t i = 0; i < num_cols; i++) {
          uint8_t not_null;
          if (!reader.Read(&not_null)) return 0;
          record.nulls[i] = not_null == 0;
          if (record.nulls[i]) continue;
          uint64_t size;
          if (layout.IsVarlen(record.col_ids[i])) {
            uint32_t varlen_size;
            if (!reader.Read(&varlen_size)) return 0;
            size = varlen_size;
          } else {
            size = layout.AttrSize(record.col_ids[i]);
          }
          record.values[i].resize(size);
          if (size > 0 && !reader.ReadBytes(record.values[i].data(), size)) return 0;
        }
        txn.records.push_back(std::move(record));
        break;
      }
      case logging::LogRecordType::kDelete: {
        ParsedRecord record;
        record.type = type;
        uint32_t oid;
        uint64_t slot_bytes;
        if (!reader.Read(&oid) || !reader.Read(&slot_bytes)) return 0;
        record.table_oid = catalog::table_oid_t(oid);
        record.slot = storage::TupleSlot::FromRawBytes(slot_bytes);
        txn.records.push_back(std::move(record));
        break;
      }
      case logging::LogRecordType::kCommit: {
        if (!reader.Read(&txn.commit_ts)) return 0;
        txn.committed = true;
        break;
      }
      case logging::LogRecordType::kAbort:
        txn.records.clear();
        break;
    }
  }

  // Phase 2: replay committed transactions in commit-timestamp order.
  std::map<transaction::timestamp_t, ParsedTxn *> commit_order;
  for (auto &[begin_ts, txn] : txns) {
    if (txn.committed) commit_order.emplace(txn.commit_ts, &txn);
  }

  uint64_t replayed = 0;
  for (auto &[commit_ts, parsed] : commit_order) {
    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    for (const ParsedRecord &record : parsed->records) {
      storage::DataTable *table = tables_.at(record.table_oid);
      const storage::BlockLayout &layout = table->GetLayout();
      if (record.type == logging::LogRecordType::kDelete) {
        const auto it = slot_map_.find(record.slot);
        MAINLINE_ASSERT(it != slot_map_.end(), "delete of unknown slot during recovery");
        const bool deleted = table->Delete(txn, it->second);
        MAINLINE_ASSERT(deleted, "replayed delete must succeed");
        (void)deleted;
        continue;
      }
      // Build the after-image projection.
      const storage::ProjectedRowInitializer initializer =
          storage::ProjectedRowInitializer::Create(layout, record.col_ids);
      std::unique_ptr<byte[]> buffer(new byte[initializer.ProjectedRowSize()]);
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.get());
      for (uint16_t i = 0; i < row->NumColumns(); i++) {
        // The initializer sorts column ids; find the log position for this
        // projection index.
        const storage::col_id_t col = row->ColumnIds()[i];
        const auto pos = static_cast<size_t>(
            std::find(record.col_ids.begin(), record.col_ids.end(), col) -
            record.col_ids.begin());
        if (record.nulls[pos]) {
          row->SetNull(i);
          continue;
        }
        byte *value = row->AccessForceNotNull(i);
        if (layout.IsVarlen(col)) {
          const auto &bytes = record.values[pos];
          const storage::VarlenEntry entry = storage::AllocateVarlen(
              {reinterpret_cast<const char *>(bytes.data()), bytes.size()});
          std::memcpy(value, &entry, sizeof(storage::VarlenEntry));
        } else {
          std::memcpy(value, record.values[pos].data(), record.values[pos].size());
        }
      }
      if (record.is_insert) {
        slot_map_[record.slot] = table->Insert(txn, *row);
      } else {
        const auto it = slot_map_.find(record.slot);
        MAINLINE_ASSERT(it != slot_map_.end(), "update of unknown slot during recovery");
        const bool updated = table->Update(txn, it->second, *row);
        MAINLINE_ASSERT(updated, "replayed update must succeed");
        (void)updated;
      }
    }
    txn_manager_->Commit(txn);
    replayed++;
  }
  return replayed;
}

}  // namespace mainline::transaction
