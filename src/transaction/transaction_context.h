#pragma once

#include <atomic>
#include <vector>

#include "common/macros.h"
#include "common/typedefs.h"
#include "logging/log_record.h"
#include "storage/projected_row.h"
#include "storage/record_buffer.h"
#include "storage/storage_defs.h"
#include "storage/undo_record.h"
#include "storage/varlen_entry.h"

namespace mainline::storage {
class DataTable;
}

namespace mainline::transaction {

class TransactionManager;

/// Per-transaction state (Section 3.1): the start/commit timestamp pair, the
/// undo buffer holding this transaction's version-chain delta records, the
/// redo buffer staging write-ahead log records, and bookkeeping for
/// abort-time varlen reclamation.
///
/// TransactionContexts are created by the TransactionManager and reclaimed by
/// the garbage collector after their effects are globally invisible.
class TransactionContext {
 public:
  /// \param start begin timestamp
  /// \param txn_id start timestamp with the uncommitted sign bit set
  /// \param buffer_pool pool to draw undo/redo buffer segments from
  TransactionContext(timestamp_t start, timestamp_t txn_id,
                     storage::RecordBufferSegmentPool *buffer_pool)
      : start_time_(start),
        txn_id_(txn_id),
        undo_buffer_(buffer_pool),
        redo_buffer_(buffer_pool) {}

  DISALLOW_COPY_AND_MOVE(TransactionContext)

  /// \return this transaction's begin timestamp.
  timestamp_t StartTime() const { return start_time_; }

  /// \return this transaction's id (begin timestamp with the sign bit set),
  /// used to stamp uncommitted versions.
  timestamp_t TxnId() const { return txn_id_; }

  /// \return commit (or abort) timestamp; kInvalidTimestamp while running.
  timestamp_t FinishTime() const { return finish_time_.load(std::memory_order_acquire); }

  /// \return true if this transaction was aborted.
  bool Aborted() const { return aborted_; }

  /// \return true if the transaction performed no writes.
  bool IsReadOnly() const { return undo_records_.empty() && redo_records_.empty(); }

  /// Reserve and initialize an undo record mirroring `delta`'s shape, stamped
  /// with this transaction's id. The data table populates the before-image.
  storage::UndoRecord *UndoRecordForUpdate(storage::DataTable *table, storage::TupleSlot slot,
                                           const storage::ProjectedRow &delta) {
    byte *head = undo_buffer_.NewEntry(storage::UndoRecord::SizeForUpdate(delta));
    auto *result = storage::UndoRecord::InitializeUpdate(head, txn_id_, slot, table, delta);
    undo_records_.push_back(result);
    return result;
  }

  /// Reserve an insert undo record ("tuple did not exist before").
  storage::UndoRecord *UndoRecordForInsert(storage::DataTable *table, storage::TupleSlot slot) {
    byte *head = undo_buffer_.NewEntry(storage::UndoRecord::SizeForInsert());
    auto *result = storage::UndoRecord::InitializeInsert(head, txn_id_, slot, table);
    undo_records_.push_back(result);
    return result;
  }

  /// Reserve a delete undo record carrying a full-row before-image.
  storage::UndoRecord *UndoRecordForDelete(storage::DataTable *table, storage::TupleSlot slot,
                                           const storage::ProjectedRowInitializer &full_row) {
    byte *head = undo_buffer_.NewEntry(storage::UndoRecord::SizeForDelete(full_row));
    auto *result = storage::UndoRecord::InitializeDelete(head, txn_id_, slot, table, full_row);
    undo_records_.push_back(result);
    return result;
  }

  /// All undo records created by this transaction, in creation order.
  std::vector<storage::UndoRecord *> &UndoRecords() { return undo_records_; }

  /// Stage a redo (after-image) log record for an insert or update. The
  /// caller fills in the returned record's delta, passes it to the table, and
  /// sets the slot for inserts.
  logging::LogRecord *StageWrite(catalog::table_oid_t table_oid, bool is_insert,
                                 const storage::ProjectedRowInitializer &initializer) {
    byte *head = redo_buffer_.NewEntry(logging::RedoRecord::Size(initializer));
    logging::LogRecord *record =
        logging::RedoRecord::Initialize(head, start_time_, table_oid, is_insert, initializer);
    redo_records_.push_back(record);
    return record;
  }

  /// Stage a redo log record whose delta is copied from `redo`.
  logging::LogRecord *StageWriteCopy(catalog::table_oid_t table_oid, bool is_insert,
                                     const storage::ProjectedRow &redo) {
    byte *head = redo_buffer_.NewEntry(
        static_cast<uint32_t>(sizeof(logging::LogRecord) + sizeof(logging::RedoRecord)) +
        redo.Size());
    logging::LogRecord *record =
        logging::RedoRecord::InitializeByCopy(head, start_time_, table_oid, is_insert, redo);
    redo_records_.push_back(record);
    return record;
  }

  /// \return true if this transaction's writes go to the write-ahead log.
  bool LoggingEnabled() const { return logging_enabled_; }

  /// Stage a delete log record.
  void StageDelete(catalog::table_oid_t table_oid, storage::TupleSlot slot) {
    byte *head = redo_buffer_.NewEntry(logging::DeleteRecord::Size());
    redo_records_.push_back(logging::DeleteRecord::Initialize(head, start_time_, table_oid, slot));
  }

  /// All staged log records, in write order (commit record appended last by
  /// the transaction manager).
  std::vector<logging::LogRecord *> &RedoRecords() { return redo_records_; }

  /// Register a varlen buffer newly allocated by this transaction (an
  /// inserted or updated value). If the transaction aborts, the buffer is
  /// orphaned by rollback and freed immediately (uncommitted values are never
  /// visible, so no reader can retain a reference).
  void RegisterLooseVarlen(const storage::VarlenEntry &entry) {
    if (entry.NeedReclaim()) loose_varlens_.push_back(entry.Content());
  }

  /// Flag the transaction as required to abort: set when a write failed
  /// (write-write conflict), because the failed redo's varlens were handed
  /// to this transaction and only Abort reclaims them. Commit asserts this
  /// flag is clear.
  void SetMustAbort() { must_abort_ = true; }

  /// \return true if a failed write obligated this transaction to abort.
  bool MustAbort() const { return must_abort_; }

 private:
  friend class TransactionManager;
  friend class DeferredActionManager;

  byte *ReserveCommitRecord() { return redo_buffer_.NewEntry(logging::CommitRecord::Size()); }

  const timestamp_t start_time_;
  const timestamp_t txn_id_;
  std::atomic<timestamp_t> finish_time_{kInvalidTimestamp};
  storage::RecordBuffer undo_buffer_;
  storage::RecordBuffer redo_buffer_;
  std::vector<storage::UndoRecord *> undo_records_;
  std::vector<logging::LogRecord *> redo_records_;
  std::vector<const byte *> loose_varlens_;
  bool aborted_ = false;
  bool logging_enabled_ = false;
  bool must_abort_ = false;
};

}  // namespace mainline::transaction
