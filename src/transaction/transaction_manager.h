#pragma once

#include <atomic>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "common/typedefs.h"
#include "logging/log_record.h"
#include "storage/record_buffer.h"
#include "transaction/transaction_context.h"

namespace mainline::logging {
class LogManager;
}

namespace mainline::transaction {

/// Creates, commits, and aborts transactions (Section 3.1).
///
/// Start and commit timestamps are drawn from one global counter. A
/// transaction's id is its start timestamp with the sign bit flipped, marking
/// its versions uncommitted: because all timestamp comparisons are unsigned,
/// those versions are never visible to any reader. Commit executes a small
/// critical section that obtains the commit timestamp and stamps the
/// transaction's delta records. Write-write conflicts are disallowed (no
/// cascading rollbacks).
class TransactionManager {
 public:
  /// \param buffer_pool pool for undo/redo buffer segments
  /// \param gc_enabled if false, finished transactions are destroyed eagerly
  ///        instead of queued for the garbage collector (single-threaded use)
  /// \param log_manager write-ahead log sink, or nullptr to run without
  ///        durability. The constructor installs this manager as the log
  ///        manager's finished-submission sink, so a LogManager pairs with
  ///        exactly one logging TransactionManager.
  TransactionManager(storage::RecordBufferSegmentPool *buffer_pool, bool gc_enabled,
                     logging::LogManager *log_manager);

  DISALLOW_COPY_AND_MOVE(TransactionManager)

  /// Shuts down and drains the log manager (if any) so in-flight submissions
  /// land back here, then destroys any finished transactions the GC did not
  /// reclaim. Tables must still be alive (their layouts are needed to free
  /// varlen before-images). Destroy this manager before the LogManager it
  /// logs to.
  ~TransactionManager();

  /// Begin a new transaction.
  /// \return the new transaction's context; ownership passes to the GC (or to
  /// this manager if GC is disabled) once the transaction finishes.
  TransactionContext *BeginTransaction();

  /// Commit `txn`. If logging is enabled, `callback(arg)` fires once the
  /// commit record is persistent; otherwise it fires before returning.
  /// Read-only transactions also obtain a commit record (Section 3.4) but the
  /// log manager elides writing it to disk.
  /// \return the commit timestamp.
  timestamp_t Commit(TransactionContext *txn,
                     logging::CommitRecord::DurabilityCallback callback = nullptr,
                     void *callback_arg = nullptr)
      EXCLUDES(commit_latch_, curr_running_latch_, completed_latch_);

  /// Abort `txn`: roll back its in-place changes in reverse order, then
  /// "commit" its undo records at a fresh timestamp by flipping the sign bit
  /// (Section 3.1's A-B-A-safe protocol — records are never unlinked here).
  /// \return the abort timestamp.
  timestamp_t Abort(TransactionContext *txn);

  /// \return begin timestamp of the oldest active transaction, or the current
  /// time if none are active. Everything committed strictly before this is
  /// invisible to all current and future transactions.
  timestamp_t OldestTransactionStartTime();

  /// \return a fresh timestamp (used by the GC to stamp unlink epochs).
  timestamp_t CheckoutTimestamp() { return time_++; }

  /// \return the current value of the global counter without advancing it.
  timestamp_t CurrentTime() const { return time_.load(std::memory_order_acquire); }

  /// Swap out the queue of finished transactions for GC processing.
  std::vector<TransactionContext *> CompletedTransactionsForGC();

  /// \return number of active transactions (diagnostics).
  uint64_t NumActiveTransactions();

  storage::RecordBufferSegmentPool *BufferPool() { return buffer_pool_; }

 private:
  void LogCommit(TransactionContext *txn, timestamp_t commit_time,
                 logging::CommitRecord::DurabilityCallback callback, void *callback_arg);
  void Rollback(TransactionContext *txn);
  void TransactionFinished(TransactionContext *txn);

  std::atomic<timestamp_t> time_{kInitialTimestamp + 1};
  common::SpinLatch curr_running_latch_;
  std::multiset<timestamp_t> curr_running_ GUARDED_BY(curr_running_latch_);
  // Serializes the commit critical section (timestamp draw + delta
  // stamping); it guards an ordering invariant, not data — the fields it
  // orders are the delta records' atomics. Referenced by Commit's EXCLUDES.
  common::SpinLatch commit_latch_;
  common::SpinLatch completed_latch_;
  std::vector<TransactionContext *> completed_txns_ GUARDED_BY(completed_latch_);

  storage::RecordBufferSegmentPool *buffer_pool_;
  bool gc_enabled_;
  logging::LogManager *log_manager_;
};

}  // namespace mainline::transaction
