#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/typedefs.h"

namespace mainline::storage {

/// The 16-byte variable-length value representation of Figure 6.
///
///   [ 4 bytes size (MSB = buffer-ownership bit) | 4 bytes prefix |
///     8 bytes pointer to the value, or the value's suffix if it fits ]
///
/// Values of at most 12 bytes are stored entirely inline (prefix + pointer
/// field). The prefix enables fast comparisons/filtering without chasing the
/// pointer. The ownership bit records whether the pointed-to buffer must be
/// reclaimed when this version dies (true for transactionally-allocated
/// buffers; false for pointers into a block's gathered Arrow buffer or
/// dictionary).
class VarlenEntry {
 public:
  /// Values up to this size are stored inline with no out-of-line buffer.
  static constexpr uint32_t kInlineThreshold = 12;
  /// Number of prefix bytes kept for fast filtering.
  static constexpr uint32_t kPrefixSize = 4;

  VarlenEntry() = default;

  /// Create an entry pointing to an out-of-line buffer.
  /// \param content buffer holding the value (not copied)
  /// \param size value size in bytes (must be > kInlineThreshold)
  /// \param reclaim true if the storage engine owns `content` and must free
  ///        it when the containing version is garbage collected
  static VarlenEntry Create(const byte *content, uint32_t size, bool reclaim) {
    MAINLINE_ASSERT(size > kInlineThreshold, "small values should be created inline");
    MAINLINE_ASSERT(size < kOwnershipBit, "varlen value too large");
    VarlenEntry result;
    result.size_ = size | (reclaim ? kOwnershipBit : 0);
    std::memcpy(result.prefix_, content, kPrefixSize);
    result.content_ = content;
    return result;
  }

  /// Create an entry storing the value entirely inline (size <= 12 bytes).
  static VarlenEntry CreateInline(const byte *content, uint32_t size) {
    MAINLINE_ASSERT(size <= kInlineThreshold, "value too long to inline");
    VarlenEntry result;
    result.size_ = size;
    if (size > 0) std::memcpy(result.prefix_, content, size);
    return result;
  }

  /// Create from any buffer, choosing inline vs out-of-line automatically.
  /// Out-of-line contents are *not* copied; `reclaim` applies only then.
  static VarlenEntry CreateFrom(const byte *content, uint32_t size, bool reclaim) {
    return size <= kInlineThreshold ? CreateInline(content, size)
                                    : Create(content, size, reclaim);
  }

  /// \return size of the value in bytes.
  uint32_t Size() const { return size_ & ~kOwnershipBit; }

  /// \return true if the value is stored entirely within this entry.
  bool IsInlined() const { return Size() <= kInlineThreshold; }

  /// \return true if the out-of-line buffer is owned by this version and must
  /// be freed when the version is reclaimed.
  bool NeedReclaim() const { return !IsInlined() && (size_ & kOwnershipBit) != 0; }

  /// \return pointer to the value's bytes (inline or out-of-line).
  const byte *Content() const {
    return IsInlined() ? reinterpret_cast<const byte *>(prefix_) : content_;
  }

  /// \return the stored prefix bytes (valid regardless of inlining).
  const byte *Prefix() const { return reinterpret_cast<const byte *>(prefix_); }

  /// \return the value as a string view (zero copy).
  std::string_view StringView() const {
    return {reinterpret_cast<const char *>(Content()), Size()};
  }

  /// Value equality (full content comparison, prefix first).
  bool operator==(const VarlenEntry &other) const {
    if (Size() != other.Size()) return false;
    if (std::memcmp(prefix_, other.prefix_, kPrefixSize) != 0) return false;
    return std::memcmp(Content(), other.Content(), Size()) == 0;
  }

 private:
  static constexpr uint32_t kOwnershipBit = uint32_t{1} << 31;

  uint32_t size_ = 0;
  char prefix_[kPrefixSize] = {0, 0, 0, 0};
  union {
    const byte *content_ = nullptr;
    char inline_suffix_[8];
  };
};

static_assert(sizeof(VarlenEntry) == 16, "VarlenEntry must be exactly 16 bytes (Figure 6)");

/// Allocate an owned out-of-line copy of `str` (or inline it if small) and
/// return the entry. Helper for workloads and tests.
inline VarlenEntry AllocateVarlen(std::string_view str) {
  const auto size = static_cast<uint32_t>(str.size());
  if (size <= VarlenEntry::kInlineThreshold) {
    return VarlenEntry::CreateInline(reinterpret_cast<const byte *>(str.data()), size);
  }
  auto *buffer = new byte[size];
  std::memcpy(buffer, str.data(), size);
  return VarlenEntry::Create(buffer, size, true);
}

}  // namespace mainline::storage
