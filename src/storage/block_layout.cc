#include "storage/block_layout.h"

#include <numeric>

#include "storage/storage_defs.h"

namespace mainline::storage {

namespace {
constexpr uint32_t AlignUp8(uint32_t x) { return (x + 7u) & ~7u; }
}  // namespace

BlockLayout::BlockLayout(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  MAINLINE_ASSERT(!columns_.empty(), "a layout must have at least one column");
  for (const auto &c : columns_) {
    MAINLINE_ASSERT(c.attr_size == 1 || c.attr_size == 2 || c.attr_size == 4 ||
                        (c.attr_size % 8 == 0 && c.attr_size <= 4096),
                    "attribute sizes must be 1, 2, 4 or a multiple of 8 up to 4096");
    MAINLINE_ASSERT(!c.varlen || c.attr_size == 16, "varlen columns store 16-byte VarlenEntry");
    tuple_size_ += c.attr_size;
    has_varlen_ = has_varlen_ || c.varlen;
  }
  column_offsets_.resize(columns_.size());

  // Initial estimate: bytes available divided by per-slot footprint (version
  // pointer + attribute bytes + one allocation bit + one null bit per column).
  const double per_slot = 8.0 + tuple_size_ + (1.0 + columns_.size()) / 8.0;
  auto num_slots = static_cast<uint32_t>((kBlockSize - kHeaderSize) / per_slot);
  // Shrink until the layout (with alignment padding) fits.
  while (num_slots > 0 && ComputeOffsets(num_slots) > kBlockSize) num_slots--;
  MAINLINE_ASSERT(num_slots > 0, "tuple too large to fit in a block");
  num_slots_ = num_slots;
  ComputeOffsets(num_slots_);
}

uint32_t BlockLayout::ComputeOffsets(uint32_t num_slots) {
  uint32_t offset = kHeaderSize;
  offset += common::BitmapSize(num_slots);  // allocation bitmap (already 8-byte multiple)
  version_ptr_offset_ = offset;
  offset += 8 * num_slots;
  for (size_t i = 0; i < columns_.size(); i++) {
    column_offsets_[i] = offset;
    offset += common::BitmapSize(num_slots);
    offset = AlignUp8(offset + columns_[i].attr_size * num_slots);
  }
  return offset;
}

std::vector<col_id_t> BlockLayout::AllColumnIds() const {
  std::vector<col_id_t> result;
  result.reserve(columns_.size());
  for (uint16_t i = 0; i < columns_.size(); i++) result.emplace_back(i);
  return result;
}

}  // namespace mainline::storage
