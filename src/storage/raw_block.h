#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/object_pool.h"
#include "common/typedefs.h"
#include "storage/block_access_controller.h"
#include "storage/storage_defs.h"

namespace mainline::storage {

class ArrowBlockMetadata;

/// A 1 MB storage block, allocated aligned at a 1 MB boundary (enforced by
/// BlockStore) so TupleSlots can pack a block pointer and a slot offset into
/// one word. The first BlockLayout::kHeaderSize (64) bytes are the header
/// declared here; everything after `content_` is governed by the table's
/// BlockLayout.
struct RawBlock {
  /// Next never-used slot; monotonically increasing. Slots freed by deletes
  /// are only recycled by the compaction phase, never by inserts.
  std::atomic<uint32_t> insert_head;
  /// Layout version of the owning table (reserved for schema evolution).
  layout_version_t layout_version;
  /// Hot/cooling/freezing/frozen coordination (Section 4).
  BlockAccessController controller;
  /// Back-pointer to the owning table, so the GC's access observer and the
  /// compactor can find a block's table from an undo record.
  DataTable *data_table;
  /// Arrow metadata (null counts, gathered varlen buffers) produced by the
  /// gathering phase; null until the block is first frozen. Owned.
  ArrowBlockMetadata *arrow_metadata;
  /// GC epoch of the last observed modification (access statistics,
  /// Section 4.2). Written by the GC, read by the access observer.
  std::atomic<uint64_t> last_touched_epoch;

  /// Start of layout-governed content. The 24 bytes of padding up to
  /// kHeaderSize are reserved.
  byte content_[0];
};

static_assert(sizeof(RawBlock) <= 64, "RawBlock header must fit in BlockLayout::kHeaderSize");

/// Allocator for 1 MB-aligned blocks, for use with common::ObjectPool.
class BlockAllocator {
 public:
  RawBlock *New() {
    auto *block = reinterpret_cast<RawBlock *>(std::aligned_alloc(kBlockSize, kBlockSize));
    Reuse(block);
    return block;
  }

  void Reuse(RawBlock *block) {
    // relaxed: the block is not reachable by any other thread until the
    // allocating caller publishes it (insert into the table's block list);
    // that publication provides the ordering.
    block->insert_head.store(0, std::memory_order_relaxed);
    block->data_table = nullptr;
    block->arrow_metadata = nullptr;
    block->last_touched_epoch.store(0, std::memory_order_relaxed);
    block->controller.Initialize();
  }

  void Delete(RawBlock *block) { std::free(block); }
};

/// Pool of storage blocks shared by all tables.
using BlockStore = common::ObjectPool<RawBlock, BlockAllocator>;

}  // namespace mainline::storage
