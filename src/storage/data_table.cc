#include "storage/data_table.h"

#include <algorithm>

#include "metrics/engine_metrics.h"
// analyze-waive(include): the type name never appears here, but
// `delete block->arrow_metadata` needs the complete ArrowBlockMetadata or
// its destructor is silently skipped (-Wdelete-incomplete).
#include "storage/arrow_block_metadata.h"
#include "storage/storage_util.h"
#include "storage/varlen_entry.h"
// analyze-waive(layering): MVCC makes storage and transaction mutually
// recursive (paper Section 3.1) — version chains live in table blocks but
// are stamped and unlinked through TransactionContext. The cycle is broken
// at header granularity (data_table.h forward-declares); this .cc include is
// the one deliberate back-edge, documented in scripts/layering.toml.
#include "transaction/transaction_context.h"

namespace mainline::storage {

DataTable::DataTable(BlockStore *store, const BlockLayout &layout, layout_version_t version)
    : block_store_(store),
      accessor_(layout),
      version_(version),
      full_row_initializer_(ProjectedRowInitializer::CreateFull(layout)) {
  insertion_block_.store(NewBlock(), std::memory_order_release);
}

DataTable::~DataTable() {
  const BlockLayout &layout = GetLayout();
  for (RawBlock *block : blocks_) {
    // Free owned out-of-line varlen values still referenced by block storage.
    for (const col_id_t col : layout.AllColumnIds()) {
      if (!layout.IsVarlen(col)) continue;
      // relaxed: destructor runs after all writers have stopped; any racing
      // access here is a bug no ordering could fix.
      const uint32_t limit = block->insert_head.load(std::memory_order_relaxed);
      for (uint32_t i = 0; i < limit; i++) {
        const TupleSlot slot(block, i);
        if (!accessor_.Allocated(slot)) continue;
        const byte *value = accessor_.AccessWithNullCheck(slot, col);
        if (value == nullptr) continue;
        const auto *entry = reinterpret_cast<const VarlenEntry *>(value);
        if (entry->NeedReclaim()) delete[] entry->Content();
      }
    }
    delete block->arrow_metadata;
    block_store_->Release(block);
  }
}

bool DataTable::Select(transaction::TransactionContext *txn, TupleSlot slot,
                       ProjectedRow *out_buffer) const {
  // Copy the latest version first; read presence and the version pointer
  // afterwards. Writers install their undo record *before* writing in place,
  // so any write that could have torn our copy is repaired by applying that
  // record's before-image during traversal.
  for (uint16_t i = 0; i < out_buffer->NumColumns(); i++) {
    StorageUtil::CopyAttrIntoProjection(accessor_, slot, out_buffer, i);
  }
  bool visible = accessor_.Allocated(slot);
  UndoRecord *record = accessor_.VersionPtr(slot).load(std::memory_order_seq_cst);

  if (record == nullptr) return visible;

  const BlockLayout &layout = GetLayout();
  while (record != nullptr) {
    const transaction::timestamp_t ts = record->Timestamp().load(std::memory_order_acquire);
    // Our own uncommitted changes are visible to us.
    if (ts == txn->TxnId()) break;
    // Committed at or before our start: this version is visible; everything
    // applied so far reconstructs it. (Unsigned comparison: uncommitted ids
    // have the sign bit set and are never <= any start time.)
    if (ts <= txn->StartTime()) break;
    if (record->Table() != nullptr) {
      switch (record->Type()) {
        case DeltaType::kUpdate:
          StorageUtil::ApplyDelta(layout, *record->Delta(), out_buffer);
          break;
        case DeltaType::kInsert:
          visible = false;
          break;
        case DeltaType::kDelete:
          visible = true;
          StorageUtil::ApplyDelta(layout, *record->Delta(), out_buffer);
          break;
      }
    }
    record = record->Next().load(std::memory_order_acquire);
  }
  return visible;
}

bool DataTable::HasConflict(const transaction::TransactionContext &txn, UndoRecord *head) const {
  if (head == nullptr) return false;
  const transaction::timestamp_t ts = head->Timestamp().load(std::memory_order_acquire);
  if (transaction::IsUncommitted(ts)) return ts != txn.TxnId();
  return ts > txn.StartTime();
}

void DataTable::RegisterLooseVarlens(transaction::TransactionContext *txn,
                                     const ProjectedRow &redo) const {
  const BlockLayout &layout = GetLayout();
  if (!layout.HasVarlen()) return;
  uint64_t bytes = 0;
  for (uint16_t i = 0; i < redo.NumColumns(); i++) {
    if (!layout.IsVarlen(redo.ColumnIds()[i])) continue;
    const byte *value = redo.AccessWithNullCheck(i);
    if (value == nullptr) continue;
    const auto *entry = reinterpret_cast<const VarlenEntry *>(value);
    bytes += entry->Size();
    txn->RegisterLooseVarlen(*entry);
  }
  if (bytes != 0) metrics::Storage().varlen_bytes->Add(bytes);
}

void DataTable::WriteValues(TupleSlot slot, const ProjectedRow &redo) const {
  for (uint16_t i = 0; i < redo.NumColumns(); i++) {
    StorageUtil::CopyAttrFromProjection(accessor_, slot, redo, i);
  }
}

bool DataTable::Update(transaction::TransactionContext *txn, TupleSlot slot,
                       const ProjectedRow &redo) {
  EnsureHot(slot.GetBlock());
  std::atomic<UndoRecord *> &version_ptr = accessor_.VersionPtr(slot);
  UndoRecord *undo = nullptr;
  while (true) {
    UndoRecord *head = version_ptr.load(std::memory_order_seq_cst);
    if (HasConflict(*txn, head)) {
      // Mark an already-reserved record as never-installed so rollback and
      // GC skip it. The redo's varlens transfer to the transaction even on
      // failure — the caller must abort (enforced in Commit), which frees
      // them.
      if (undo != nullptr) undo->SetTableNull();
      RegisterLooseVarlens(txn, redo);
      txn->SetMustAbort();
      metrics::Storage().write_write_conflicts->Add(1);
      return false;
    }
    // A deleted (or not-yet-published) tuple cannot be updated.
    if (!accessor_.Allocated(slot)) {
      if (undo != nullptr) undo->SetTableNull();
      RegisterLooseVarlens(txn, redo);
      txn->SetMustAbort();
      return false;
    }
    if (undo == nullptr) undo = txn->UndoRecordForUpdate(this, slot, redo);
    // Populate the before-image of exactly the updated columns. Re-populated
    // on retry: a CAS failure means the chain head changed under us (another
    // writer, or the GC truncating the chain) and the image may be stale.
    for (uint16_t i = 0; i < redo.NumColumns(); i++) {
      StorageUtil::CopyAttrIntoProjection(accessor_, slot, undo->Delta(), i);
    }
    // relaxed: the record is still private to this thread; the successful
    // CAS below publishes the whole record (Next included) to readers.
    undo->Next().store(head, std::memory_order_relaxed);
    if (version_ptr.compare_exchange_strong(head, undo, std::memory_order_seq_cst)) break;
  }
  RegisterLooseVarlens(txn, redo);
  // Apply the update in place. Readers that copied torn data repair it via
  // the undo record installed above.
  WriteValues(slot, redo);
  metrics::Storage().updates->Add(1);
  return true;
}

TupleSlot DataTable::Insert(transaction::TransactionContext *txn, const ProjectedRow &redo) {
  while (true) {
    // Claim a never-used slot, appending a new block if the table is full.
    TupleSlot slot;
    while (true) {
      RawBlock *block = insertion_block_.load(std::memory_order_acquire);
      EnsureHot(block);
      if (accessor_.Allocate(block, &slot)) break;
      // Block full: install a fresh insertion block (single winner).
      common::SharedLatch::ScopedExclusiveLatch guard(&blocks_latch_);
      if (insertion_block_.load(std::memory_order_acquire) == block) {
        RawBlock *new_block = block_store_->Get();
        MAINLINE_ASSERT(new_block != nullptr, "block store exhausted");
        accessor_.InitializeRawBlock(this, new_block, version_);
        blocks_.push_back(new_block);
        insertion_block_.store(new_block, std::memory_order_release);
      }
    }

    UndoRecord *undo = txn->UndoRecordForInsert(this, slot);
    // Publish with a CAS, not a blind store: the slot is never-used, but the
    // compactor's InsertInto may legally target it — the compaction planner
    // counts never-used slots past the insert head as fillable gaps, and the
    // insertion block is a valid compaction target. Exactly one writer wins
    // the null -> record transition; a blind store here could erase a
    // concurrently installed compaction insert record, after which both
    // transactions would write the slot and commit without ever seeing a
    // conflict — orphaning one of the two rows' varlen buffers (the
    // compactor's DeepCopyVarlens copies escaped the abort-reclaim protocol
    // exactly this way) and silently losing a tuple.
    UndoRecord *expected = nullptr;
    if (!accessor_.VersionPtr(slot).compare_exchange_strong(expected, undo,
                                                            std::memory_order_seq_cst)) {
      // A compaction move claimed this slot first. Disown the reserved undo
      // record (rollback and GC skip it) and claim the next slot instead.
      undo->SetTableNull();
      continue;
    }
    WriteValues(slot, redo);
    RegisterLooseVarlens(txn, redo);
    accessor_.SetAllocated(slot);
    metrics::Storage().inserts->Add(1);
    return slot;
  }
}

bool DataTable::InsertInto(transaction::TransactionContext *txn, TupleSlot dest,
                           const ProjectedRow &redo) {
  EnsureHot(dest.GetBlock());
  std::atomic<UndoRecord *> &version_ptr = accessor_.VersionPtr(dest);
  UndoRecord *undo = nullptr;
  while (true) {
    UndoRecord *head = version_ptr.load(std::memory_order_seq_cst);
    if (HasConflict(*txn, head) || accessor_.Allocated(dest)) {
      if (HasConflict(*txn, head)) metrics::Storage().write_write_conflicts->Add(1);
      if (undo != nullptr) undo->SetTableNull();
      // As in Update: ownership of the redo's varlens stays with the
      // transaction, whose abort (enforced in Commit) reclaims them.
      RegisterLooseVarlens(txn, redo);
      txn->SetMustAbort();
      return false;
    }
    if (undo == nullptr) undo = txn->UndoRecordForInsert(this, dest);
    // Chain on top of any residual (committed, older) records: old readers
    // reconstruct the previous occupant through the delete record below us.
    // relaxed: the record is still private to this thread; the successful
    // CAS below publishes the whole record (Next included) to readers.
    undo->Next().store(head, std::memory_order_relaxed);
    if (version_ptr.compare_exchange_strong(head, undo, std::memory_order_seq_cst)) break;
  }
  WriteValues(dest, redo);
  RegisterLooseVarlens(txn, redo);
  accessor_.SetAllocated(dest);
  // Compaction may fill slots beyond the insert head (e.g. when topping up a
  // partially-filled block); extend the head so scans cover them.
  std::atomic<uint32_t> &head = dest.GetBlock()->insert_head;
  uint32_t cur = head.load(std::memory_order_acquire);
  while (cur <= dest.GetOffset() &&
         !head.compare_exchange_weak(cur, dest.GetOffset() + 1, std::memory_order_acq_rel)) {
  }
  return true;
}

bool DataTable::Delete(transaction::TransactionContext *txn, TupleSlot slot) {
  EnsureHot(slot.GetBlock());
  std::atomic<UndoRecord *> &version_ptr = accessor_.VersionPtr(slot);
  UndoRecord *undo = nullptr;
  while (true) {
    UndoRecord *head = version_ptr.load(std::memory_order_seq_cst);
    if (HasConflict(*txn, head) || !accessor_.Allocated(slot)) {
      if (HasConflict(*txn, head)) metrics::Storage().write_write_conflicts->Add(1);
      if (undo != nullptr) undo->SetTableNull();
      return false;
    }
    // Full-row before-image: the compactor may later recycle this slot's
    // bytes while old readers still reconstruct the deleted tuple
    // (Section 4.3).
    if (undo == nullptr) undo = txn->UndoRecordForDelete(this, slot, full_row_initializer_);
    for (uint16_t i = 0; i < undo->Delta()->NumColumns(); i++) {
      StorageUtil::CopyAttrIntoProjection(accessor_, slot, undo->Delta(), i);
    }
    // relaxed: the record is still private to this thread; the successful
    // CAS below publishes the whole record (Next included) to readers.
    undo->Next().store(head, std::memory_order_relaxed);
    if (version_ptr.compare_exchange_strong(head, undo, std::memory_order_seq_cst)) break;
  }
  accessor_.SetDeallocated(slot);
  metrics::Storage().deletes->Add(1);
  return true;
}

bool DataTable::HasActiveVersions(RawBlock *block) const {
  const auto *version_column = reinterpret_cast<const std::atomic<UndoRecord *> *>(
      reinterpret_cast<const byte *>(block) + GetLayout().VersionPtrOffset());
  const uint32_t limit = block->insert_head.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < limit; i++) {
    if (version_column[i].load(std::memory_order_acquire) != nullptr) return true;
  }
  return false;
}

RawBlock *DataTable::NewBlock() {
  RawBlock *block = block_store_->Get();
  MAINLINE_ASSERT(block != nullptr, "block store exhausted");
  accessor_.InitializeRawBlock(this, block, version_);
  common::SharedLatch::ScopedExclusiveLatch guard(&blocks_latch_);
  blocks_.push_back(block);
  return block;
}

bool DataTable::ScheduleBlockRelease(RawBlock *block) {
  common::SharedLatch::ScopedExclusiveLatch guard(&blocks_latch_);
  if (std::find(blocks_.begin(), blocks_.end(), block) == blocks_.end()) return false;
  return pending_release_.insert(block).second;
}

bool DataTable::ReleaseBlock(RawBlock *block) {
  {
    common::SharedLatch::ScopedExclusiveLatch guard(&blocks_latch_);
    // Whatever happens below, the reservation is consumed: a declined
    // release leaves the block attached and a later pass may reschedule it.
    pending_release_.erase(block);
    // Membership next, by pointer comparison only — never dereference a
    // block that is no longer attached.
    const auto it = std::find(blocks_.begin(), blocks_.end(), block);
    if (it == blocks_.end()) return false;
    // The active insertion block must stay attached even when the compactor
    // emptied it: concurrent inserts are still allowed to claim slots from
    // it. It simply remains in the table, empty, and fills up again.
    if (insertion_block_.load(std::memory_order_acquire) == block) return false;
    // The block may also have been refilled between the compactor emptying
    // it and this deferred release (it was the insertion block in that
    // window). Slots are never re-allocated once a block rolls over, so a
    // block that is empty and not the insertion block stays empty.
    if (FilledSlots(block) != 0) return false;
    blocks_.erase(it);
  }
  delete block->arrow_metadata;
  block_store_->Release(block);
  return true;
}

}  // namespace mainline::storage
