#include "storage/projected_row.h"

#include <algorithm>
#include <numeric>

namespace mainline::storage {

ProjectedRow *ProjectedRow::CopyProjectedRowLayout(byte *head, const ProjectedRow &other) {
  auto *result = reinterpret_cast<ProjectedRow *>(head);
  // Copy the fixed header plus ids and offsets; values are left untouched.
  const uint32_t header_size =
      static_cast<uint32_t>(sizeof(ProjectedRow)) + AlignedIdsSize(other.num_cols_) +
      4u * other.num_cols_;
  std::memcpy(static_cast<void *>(result), static_cast<const void *>(&other), header_size);
  // All columns start out null.
  std::memset(result->Bitmap(), 0, (other.num_cols_ + 7) / 8);
  return result;
}

ProjectedRowInitializer ProjectedRowInitializer::Create(const BlockLayout &layout,
                                                        std::vector<col_id_t> col_ids) {
  MAINLINE_ASSERT(!col_ids.empty(), "cannot project zero columns");
  std::sort(col_ids.begin(), col_ids.end());
  MAINLINE_ASSERT(std::adjacent_find(col_ids.begin(), col_ids.end()) == col_ids.end(),
                  "duplicate column ids in projection");

  ProjectedRowInitializer result;
  result.col_ids_ = std::move(col_ids);
  const auto num_cols = static_cast<uint16_t>(result.col_ids_.size());

  // Header: size + num_cols + ids (padded to 4) + offsets + bitmap, then pad
  // to 8 before values.
  uint32_t offset = static_cast<uint32_t>(sizeof(ProjectedRow)) +
                    ProjectedRow::AlignedIdsSize(num_cols) + 4u * num_cols +
                    (num_cols + 7u) / 8u;
  offset = (offset + 7u) & ~7u;

  // Assign value offsets in descending attribute-size order so every value is
  // naturally aligned without interior padding.
  std::vector<uint16_t> order(num_cols);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint16_t a, uint16_t b) {
    return layout.AttrSize(result.col_ids_[a]) > layout.AttrSize(result.col_ids_[b]);
  });

  result.offsets_.resize(num_cols);
  for (const uint16_t idx : order) {
    result.offsets_[idx] = offset;
    offset += layout.AttrSize(result.col_ids_[idx]);
  }
  result.size_ = (offset + 7u) & ~7u;
  return result;
}

ProjectedRowInitializer ProjectedRowInitializer::CreateFull(const BlockLayout &layout) {
  return Create(layout, layout.AllColumnIds());
}

ProjectedRow *ProjectedRowInitializer::InitializeRow(byte *head) const {
  MAINLINE_ASSERT(reinterpret_cast<uintptr_t>(head) % 8 == 0,
                  "ProjectedRow buffers must be 8-byte aligned");
  auto *result = reinterpret_cast<ProjectedRow *>(head);
  result->size_ = size_;
  result->num_cols_ = static_cast<uint16_t>(col_ids_.size());
  std::memcpy(result->ColumnIds(), col_ids_.data(), col_ids_.size() * sizeof(col_id_t));
  std::memcpy(result->ValueOffsets(), offsets_.data(), offsets_.size() * sizeof(uint32_t));
  std::memset(result->Bitmap(), 0, (col_ids_.size() + 7) / 8);
  return result;
}

}  // namespace mainline::storage
