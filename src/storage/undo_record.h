#pragma once

#include <atomic>
#include <cstdint>

#include "common/macros.h"
#include "common/typedefs.h"
#include "storage/projected_row.h"
#include "storage/storage_defs.h"

namespace mainline::storage {

/// A version-chain delta record (Section 3.1): the physical before-image of
/// the modified attributes, plus chain metadata. Lives inside a transaction's
/// undo buffer; the version-pointer column points at these.
///
/// - kUpdate records carry a before-image of exactly the updated columns.
/// - kDelete records carry a full before-image of the tuple (needed because
///   the compactor may recycle the slot's bytes while old readers still
///   reconstruct the deleted tuple).
/// - kInsert records carry no data; their before-image is "did not exist".
class UndoRecord {
 public:
  UndoRecord() = delete;
  DISALLOW_COPY_AND_MOVE(UndoRecord)

  DeltaType Type() const { return type_; }

  /// Commit timestamp of this version, or the owning transaction's id (with
  /// the uncommitted bit) until it commits.
  std::atomic<transaction::timestamp_t> &Timestamp() { return timestamp_; }
  const std::atomic<transaction::timestamp_t> &Timestamp() const { return timestamp_; }

  /// Table the modified tuple belongs to. A null table marks a record that
  /// was never installed (its CAS lost a race) and must be skipped by
  /// rollback and GC.
  DataTable *Table() const { return table_; }
  void SetTableNull() { table_ = nullptr; }

  TupleSlot Slot() const { return slot_; }

  /// Next (older) record in the version chain.
  std::atomic<UndoRecord *> &Next() { return next_; }
  const std::atomic<UndoRecord *> &Next() const { return next_; }

  /// The before-image payload. Only valid for kUpdate and kDelete records.
  ProjectedRow *Delta() {
    MAINLINE_ASSERT(type_ != DeltaType::kInsert, "insert undo records carry no before-image");
    return reinterpret_cast<ProjectedRow *>(varlen_contents_);
  }
  const ProjectedRow *Delta() const {
    return reinterpret_cast<const ProjectedRow *>(varlen_contents_);
  }

  /// \return total size of this record in bytes.
  uint32_t Size() const { return size_; }

  static uint32_t SizeForUpdate(const ProjectedRow &delta) {
    return static_cast<uint32_t>(sizeof(UndoRecord)) + delta.Size();
  }
  static uint32_t SizeForInsert() { return static_cast<uint32_t>(sizeof(UndoRecord)); }
  static uint32_t SizeForDelete(const ProjectedRowInitializer &full_row) {
    return static_cast<uint32_t>(sizeof(UndoRecord)) + full_row.ProjectedRowSize();
  }

  /// Initialize an update record whose before-image has the same shape as the
  /// update's delta. Values are populated by the data table afterwards.
  static UndoRecord *InitializeUpdate(byte *head, transaction::timestamp_t ts, TupleSlot slot,
                                      DataTable *table, const ProjectedRow &delta_shape) {
    auto *result = InitializeHeader(head, DeltaType::kUpdate, ts, slot, table,
                                    SizeForUpdate(delta_shape));
    ProjectedRow::CopyProjectedRowLayout(result->varlen_contents_, delta_shape);
    return result;
  }

  static UndoRecord *InitializeInsert(byte *head, transaction::timestamp_t ts, TupleSlot slot,
                                      DataTable *table) {
    return InitializeHeader(head, DeltaType::kInsert, ts, slot, table, SizeForInsert());
  }

  static UndoRecord *InitializeDelete(byte *head, transaction::timestamp_t ts, TupleSlot slot,
                                      DataTable *table, const ProjectedRowInitializer &full_row) {
    auto *result = InitializeHeader(head, DeltaType::kDelete, ts, slot, table,
                                    SizeForDelete(full_row));
    full_row.InitializeRow(result->varlen_contents_);
    return result;
  }

 private:
  static UndoRecord *InitializeHeader(byte *head, DeltaType type, transaction::timestamp_t ts,
                                      TupleSlot slot, DataTable *table, uint32_t size) {
    auto *result = reinterpret_cast<UndoRecord *>(head);
    result->type_ = type;
    // relaxed: both stores below — the record is private to the creating
    // transaction until the version-pointer CAS in DataTable publishes it.
    result->timestamp_.store(ts, std::memory_order_relaxed);
    result->table_ = table;
    result->slot_ = slot;
    result->next_.store(nullptr, std::memory_order_relaxed);
    result->size_ = size;
    return result;
  }

  std::atomic<transaction::timestamp_t> timestamp_;
  DataTable *table_;
  TupleSlot slot_;
  std::atomic<UndoRecord *> next_;
  uint32_t size_;
  DeltaType type_;
  uint8_t padding_[3];  // keeps varlen_contents_ 8-byte aligned
  byte varlen_contents_[0];
};

static_assert(sizeof(UndoRecord) % 8 == 0, "UndoRecord payload must stay 8-byte aligned");

}  // namespace mainline::storage
