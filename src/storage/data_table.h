#pragma once

#include <atomic>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/shared_latch.h"
#include "common/thread_annotations.h"
#include "common/typedefs.h"
#include "storage/block_layout.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "storage/tuple_access_strategy.h"
#include "storage/undo_record.h"

namespace mainline::transaction {
class TransactionContext;
}

namespace mainline::storage {

/// The multi-versioned Data Table of Section 3: a collection of 1 MB PAX
/// blocks in the relaxed Arrow format, with a delta-storage version chain per
/// tuple kept in an invisible version-pointer column. Provides snapshot
/// isolation reads and first-writer-wins writes; write-write conflicts are
/// disallowed to avoid cascading rollbacks.
///
/// All methods are safe to call concurrently from many transactions. The
/// block transformation pipeline (Section 4) coordinates with updaters via
/// each block's BlockAccessController.
class DataTable {
 public:
  /// \param store block pool to draw storage from
  /// \param layout physical layout of this table's blocks
  /// \param version layout version tag stamped on new blocks
  DataTable(BlockStore *store, const BlockLayout &layout, layout_version_t version);

  DISALLOW_COPY_AND_MOVE(DataTable)

  ~DataTable();

  /// Materialize the version of `slot` visible to `txn` into `out_buffer`
  /// (early materialization, Section 3.1). The buffer's projection may cover
  /// any subset of columns.
  /// \return true if the tuple is visible to `txn`, false otherwise.
  bool Select(transaction::TransactionContext *txn, TupleSlot slot,
              ProjectedRow *out_buffer) const;

  /// Update the attributes in `redo` in place, installing a before-image
  /// delta on the version chain first.
  /// \return true on success; false on a write-write conflict (the caller
  /// must abort the transaction).
  bool Update(transaction::TransactionContext *txn, TupleSlot slot, const ProjectedRow &redo);

  /// Insert a new tuple.
  /// \return the slot the tuple was placed in.
  TupleSlot Insert(transaction::TransactionContext *txn, const ProjectedRow &redo);

  /// Insert into a specific currently-empty slot. Used by the compactor to
  /// fill gaps left by deletes — including never-used slots past the insert
  /// head, which a concurrent Insert may race for: both sides claim a slot by
  /// winning the version pointer's null -> record CAS, so exactly one of them
  /// owns it (the loser fails here, or moves on to the next slot there).
  /// \return true on success, false if the slot is occupied or contended.
  bool InsertInto(transaction::TransactionContext *txn, TupleSlot dest, const ProjectedRow &redo);

  /// Logically delete `slot`, recording a full-row before-image so the slot's
  /// bytes can later be recycled while old readers still reconstruct it.
  /// \return true on success; false on conflict (caller must abort).
  bool Delete(transaction::TransactionContext *txn, TupleSlot slot);

  /// Iterates every slot (allocated or not) in [0, insert_head) of every
  /// block. Visibility is determined by Select.
  class SlotIterator {
   public:
    TupleSlot operator*() const { return TupleSlot(blocks_[block_idx_], offset_); }

    SlotIterator &operator++() {
      offset_++;
      AdvanceToValid();
      return *this;
    }

    bool operator==(const SlotIterator &other) const {
      return block_idx_ == other.block_idx_ && offset_ == other.offset_;
    }

    /// \return true if the iterator is exhausted.
    bool Done() const { return block_idx_ >= blocks_.size(); }

    /// \return the block the iterator is currently positioned in.
    RawBlock *CurrentBlock() const { return blocks_[block_idx_]; }

   private:
    friend class DataTable;
    SlotIterator(std::vector<RawBlock *> blocks, size_t block_idx, uint32_t offset)
        : blocks_(std::move(blocks)), block_idx_(block_idx), offset_(offset) {
      AdvanceToValid();
    }

    void AdvanceToValid() {
      while (block_idx_ < blocks_.size() &&
             offset_ >= blocks_[block_idx_]->insert_head.load(std::memory_order_acquire)) {
        block_idx_++;
        offset_ = 0;
      }
    }

    std::vector<RawBlock *> blocks_;
    size_t block_idx_;
    uint32_t offset_;
  };

  /// \return iterator positioned at the first slot.
  SlotIterator begin() const { return SlotIterator(Blocks(), 0, 0); }

  const TupleAccessStrategy &Accessor() const { return accessor_; }
  const BlockLayout &GetLayout() const { return accessor_.GetBlockLayout(); }
  layout_version_t LayoutVersion() const { return version_; }
  BlockStore *GetBlockStore() const { return block_store_; }

  /// Initializer covering every column (used for delete before-images and
  /// full-row materialization).
  const ProjectedRowInitializer &FullRowInitializer() const { return full_row_initializer_; }

  /// \return a snapshot of the table's blocks, in allocation order.
  std::vector<RawBlock *> Blocks() const {
    common::SharedLatch::ScopedSharedLatch guard(&blocks_latch_);
    return blocks_;
  }

  /// \return number of blocks currently backing the table.
  size_t NumBlocks() const {
    common::SharedLatch::ScopedSharedLatch guard(&blocks_latch_);
    return blocks_.size();
  }

  /// Reserve the (single) pending release slot for `block` before deferring
  /// a ReleaseBlock call. Callers must only register the deferred release
  /// when this returns true, which keeps at most one release in flight per
  /// block incarnation.
  /// \return false if the block is not attached to this table or a release
  ///         is already pending for it.
  bool ScheduleBlockRelease(RawBlock *block);

  /// Detach an empty block from the table and return it to the block store.
  /// Called by the compactor (via the GC's deferred-action queue) after it
  /// has emptied a block and reserved the release with ScheduleBlockRelease.
  /// Clears the pending-release reservation either way.
  /// \return false if the block must stay attached: it is the table's active
  ///         insertion block, it was refilled while the release was
  ///         deferred, or it is no longer attached; true once the block has
  ///         been returned to the store.
  bool ReleaseBlock(RawBlock *block);

  /// \return the block new inserts currently go to. Blocks only hand this
  ///         role to a freshly allocated successor, never acquire it.
  RawBlock *CurrentInsertionBlock() const {
    return insertion_block_.load(std::memory_order_acquire);
  }

  /// \return number of allocated (logically present) slots in `block`.
  uint32_t FilledSlots(RawBlock *block) const {
    return accessor_.AllocationBitmap(block)->CountSet(GetLayout().NumSlots());
  }

  /// \return true if any slot in `block` has a non-null version chain.
  bool HasActiveVersions(RawBlock *block) const;

 private:
  friend class transaction::TransactionContext;

  RawBlock *NewBlock();

  /// \return true if installing a new version on a chain headed by `head`
  /// would be a write-write conflict for `txn`.
  bool HasConflict(const transaction::TransactionContext &txn, UndoRecord *head) const;

  /// Ensure the block is in the hot state before a write (preempts cooling,
  /// waits out freezing, flips frozen and drains in-place readers).
  void EnsureHot(RawBlock *block) const {
    if (UNLIKELY(block->controller.GetState() != BlockState::kHot)) {
      block->controller.WaitUntilHot();
    }
  }

  /// Track newly-written varlen buffers so aborts can reclaim them.
  void RegisterLooseVarlens(transaction::TransactionContext *txn,
                            const ProjectedRow &redo) const;

  /// Write all of `redo`'s attributes into `slot`.
  void WriteValues(TupleSlot slot, const ProjectedRow &redo) const;

  BlockStore *block_store_;
  TupleAccessStrategy accessor_;
  layout_version_t version_;
  ProjectedRowInitializer full_row_initializer_;

  mutable common::SharedLatch blocks_latch_;
  std::vector<RawBlock *> blocks_ GUARDED_BY(blocks_latch_);
  std::atomic<RawBlock *> insertion_block_;
  // Blocks with a deferred release in flight. Scheduling is deduplicated
  // here so at most one release exists per block incarnation — a stale
  // second release could otherwise free a recycled block before the epoch
  // protecting its readers has passed.
  std::unordered_set<RawBlock *> pending_release_ GUARDED_BY(blocks_latch_);
};

}  // namespace mainline::storage
