#pragma once

#include <atomic>
#include <cstdint>

#include "common/cpu_relax.h"

namespace mainline::storage {

/// Temperature / access state of a block (Section 4.1 and 4.3).
enum class BlockState : uint32_t {
  /// Freshly written or recently modified; Arrow readers must materialize.
  kHot = 0,
  /// The transformation thread intends to freeze this block. User
  /// transactions may preempt by flipping the state back to hot.
  kCooling,
  /// Exclusive lock held by the gathering phase; updaters wait.
  kFreezing,
  /// Fully Arrow-compliant; in-place readers allowed under the reader count.
  kFrozen,
};

/// Coordinates access between transactional updaters, the background
/// transformation thread, and in-place (Arrow) readers.
///
/// A single 64-bit word packs the state (low 32 bits) and a reader counter
/// (high 32 bits). The counter acts as a reader-writer lock for frozen blocks
/// (Figure 7): in-place readers increment it while scanning; a transaction
/// that wants to update a frozen block first flips the state to hot (blocking
/// new in-place readers) and then spins until lingering readers leave.
///
/// Memory-ordering protocol (audited — every transition on word_ forms one of
/// these release/acquire pairs; none is weaker than its pairing requires):
///
///  - SetFrozen's release store publishes the gathered Arrow data: it pairs
///    with the acquire half of TryAcquireRead's CAS (and with GetState's
///    acquire load), so an in-place reader that observes kFrozen also
///    observes every column write the gather phase performed before it.
///  - ReleaseRead's acq_rel decrement: the release half publishes the
///    reader's loads-from-the-block to the updater spinning in WaitUntilHot
///    (a release fence orders *all* prior memory operations, loads included,
///    so the block's bytes cannot be recycled out from under a reader that
///    has logically left); the acquire half keeps later reads in a reader's
///    next critical section from floating above the decrement.
///  - WaitUntilHot's acquire loads (direct and via ReaderCount) pair with
///    ReleaseRead and with SetFrozen/TrySet* releases: once the updater sees
///    zero readers it also sees their completed accesses, and once it sees a
///    state written by the transformation thread it sees the block contents
///    that state implies. Its CAS is acq_rel: the release half publishes
///    nothing the paper's protocol needs today (the flip precedes the
///    update's writes, which version chains order separately), but keeps the
///    hot-flip a full synchronization point cheaply.
///  - TrySetCooling / TrySetFreezing CASes are acq_rel for the same reason:
///    the acquire half lets the transformation thread see all updates that
///    committed while the block was hot before it starts compacting.
///  - Initialize's release store pairs with any later acquire load so a
///    freshly recycled block's reset is visible together with its reuse.
class BlockAccessController {
 public:
  /// Reset the controller to the hot state with no readers.
  void Initialize() { word_.store(Pack(BlockState::kHot, 0), std::memory_order_release); }

  /// \return the block's current state.
  BlockState GetState() const {
    return UnpackState(word_.load(std::memory_order_acquire));
  }

  /// \return the current number of in-place readers.
  uint32_t ReaderCount() const {
    return UnpackReaders(word_.load(std::memory_order_acquire));
  }

  /// Try to register this thread as an in-place reader. Succeeds only if the
  /// block is frozen.
  /// \return true if a read lock was acquired (pair with ReleaseRead).
  bool TryAcquireRead() {
    uint64_t current = word_.load(std::memory_order_acquire);
    while (true) {
      if (UnpackState(current) != BlockState::kFrozen) return false;
      const uint64_t desired = Pack(BlockState::kFrozen, UnpackReaders(current) + 1);
      if (word_.compare_exchange_weak(current, desired, std::memory_order_acq_rel)) return true;
    }
  }

  /// Release a read lock acquired with TryAcquireRead.
  void ReleaseRead() { word_.fetch_sub(uint64_t{1} << 32, std::memory_order_acq_rel); }

  /// Called by a transaction before modifying the block. Ensures the state is
  /// hot and waits for any lingering in-place readers to finish. Preempts a
  /// pending cooling state; waits out an in-progress freezing critical
  /// section.
  void WaitUntilHot() {
    uint64_t current = word_.load(std::memory_order_acquire);
    while (true) {
      const BlockState state = UnpackState(current);
      if (state == BlockState::kFreezing) {
        // Exclusive lock held by the gathering phase; spin until it finishes.
        current = word_.load(std::memory_order_acquire);
        continue;
      }
      if (state == BlockState::kHot) break;
      // kCooling or kFrozen: flip to hot, preserving the reader count.
      const uint64_t desired = Pack(BlockState::kHot, UnpackReaders(current));
      if (word_.compare_exchange_weak(current, desired, std::memory_order_acq_rel)) break;
    }
    // Wait for lingering in-place readers to leave the block.
    while (ReaderCount() != 0) common::CpuRelax();
  }

  /// Transformation thread: announce intent to freeze. Only valid from hot.
  /// \return true if the state moved hot -> cooling.
  bool TrySetCooling() {
    uint64_t expected = Pack(BlockState::kHot, 0);
    return word_.compare_exchange_strong(expected, Pack(BlockState::kCooling, 0),
                                         std::memory_order_acq_rel);
  }

  /// Transformation thread: take the exclusive lock. Only valid from cooling;
  /// fails if a user transaction preempted the cooling state.
  /// \return true if the state moved cooling -> freezing.
  bool TrySetFreezing() {
    uint64_t expected = Pack(BlockState::kCooling, 0);
    return word_.compare_exchange_strong(expected, Pack(BlockState::kFreezing, 0),
                                         std::memory_order_acq_rel);
  }

  /// Transformation thread: release the exclusive lock, marking the block
  /// fully Arrow-compliant.
  void SetFrozen() { word_.store(Pack(BlockState::kFrozen, 0), std::memory_order_release); }

 private:
  static constexpr uint64_t Pack(BlockState state, uint32_t readers) {
    return (static_cast<uint64_t>(readers) << 32) | static_cast<uint32_t>(state);
  }
  static constexpr BlockState UnpackState(uint64_t word) {
    return static_cast<BlockState>(static_cast<uint32_t>(word));
  }
  static constexpr uint32_t UnpackReaders(uint64_t word) {
    return static_cast<uint32_t>(word >> 32);
  }

  std::atomic<uint64_t> word_{0};
};

}  // namespace mainline::storage
