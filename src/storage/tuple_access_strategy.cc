#include "storage/tuple_access_strategy.h"

#include <cstring>

namespace mainline::storage {

void TupleAccessStrategy::InitializeRawBlock(DataTable *table, RawBlock *block,
                                             layout_version_t version) const {
  block->data_table = table;
  block->layout_version = version;
  // relaxed: initialization of a block no other thread can reach yet; the
  // caller's publication into the block list orders these stores.
  block->insert_head.store(0, std::memory_order_relaxed);
  block->arrow_metadata = nullptr;
  block->last_touched_epoch.store(0, std::memory_order_relaxed);
  block->controller.Initialize();

  const uint32_t num_slots = layout_.NumSlots();
  AllocationBitmap(block)->Clear(num_slots);
  std::memset(reinterpret_cast<byte *>(block) + layout_.VersionPtrOffset(), 0,
              sizeof(UndoRecord *) * num_slots);
  for (uint16_t i = 0; i < layout_.NumColumns(); i++) {
    ColumnNullBitmap(block, col_id_t(i))->Clear(num_slots);
  }
}

}  // namespace mainline::storage
