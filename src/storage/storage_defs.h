#pragma once

#include <cstdint>
#include <functional>

#include "common/macros.h"

namespace mainline::storage {

struct RawBlock;
class DataTable;

/// Size of a storage block. Blocks are allocated aligned at this boundary so
/// that a pointer into a block can be decomposed into (block, offset) — the
/// physiological addressing scheme of Section 3.2.
constexpr uint32_t kBlockSize = 1u << 20;  // 1 MB

/// Size of an undo/redo buffer segment (Section 3.1: undo buffers are linked
/// lists of fixed-size segments so that physical pointers into them remain
/// valid as the buffer grows).
constexpr uint32_t kBufferSegmentSize = 1u << 12;  // 4096 bytes

/// Number of bits used for the in-block offset in a TupleSlot. With 1 MB
/// blocks there can never be more tuples than bytes in a block, so 20 bits
/// suffice (Figure 5).
constexpr uint32_t kBlockOffsetBits = 20;
static_assert((uint32_t{1} << kBlockOffsetBits) == kBlockSize);

/// The kind of modification recorded by an undo (delta) record.
enum class DeltaType : uint8_t {
  /// Before-image of the updated attributes.
  kUpdate = 0,
  /// Marks that the tuple did not exist before this transaction.
  kInsert,
  /// Full before-image of the tuple; the slot's allocation bit was cleared.
  kDelete,
};

/// Globally unique physiological tuple identifier: the physical address of
/// the 1 MB-aligned block in the upper 44 bits and the logical slot offset in
/// the lower 20 bits (Figure 5). Fits in one 64-bit word.
class TupleSlot {
 public:
  TupleSlot() = default;

  /// \param block block the tuple lives in (must be 1 MB aligned)
  /// \param offset logical slot number within the block
  TupleSlot(const RawBlock *block, uint32_t offset)
      : bytes_(reinterpret_cast<uintptr_t>(block) | offset) {
    MAINLINE_ASSERT((reinterpret_cast<uintptr_t>(block) & (kBlockSize - 1)) == 0,
                    "blocks must be aligned at 1 MB boundaries");
    MAINLINE_ASSERT(offset < kBlockSize, "offset must fit in the lower 20 bits");
  }

  /// \return the block this slot belongs to.
  RawBlock *GetBlock() const {
    return reinterpret_cast<RawBlock *>(bytes_ & ~static_cast<uintptr_t>(kBlockSize - 1));
  }

  /// \return the logical slot offset within the block.
  uint32_t GetOffset() const { return static_cast<uint32_t>(bytes_ & (kBlockSize - 1)); }

  bool operator==(const TupleSlot &other) const = default;
  auto operator<=>(const TupleSlot &other) const = default;

  /// \return the raw 64-bit representation (used by the log serializer).
  uintptr_t RawBytes() const { return bytes_; }

  /// Rebuild a slot from its raw 64-bit representation.
  static TupleSlot FromRawBytes(uintptr_t bytes) {
    TupleSlot s;
    s.bytes_ = bytes;
    return s;
  }

 private:
  uintptr_t bytes_ = 0;
};

}  // namespace mainline::storage

namespace std {
template <>
struct hash<mainline::storage::TupleSlot> {
  size_t operator()(const mainline::storage::TupleSlot &slot) const {
    return hash<uintptr_t>()(slot.RawBytes());
  }
};
}  // namespace std
