#pragma once

#include <atomic>
#include <cstdint>

#include "common/raw_bitmap.h"
#include "common/typedefs.h"
#include "storage/block_layout.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"

namespace mainline::storage {

class UndoRecord;

/// Maps (block, slot, column) triples onto physical addresses, given a
/// BlockLayout (Section 3.2). Stateless apart from the layout; all methods
/// are const and thread-safe.
class TupleAccessStrategy {
 public:
  explicit TupleAccessStrategy(BlockLayout layout) : layout_(std::move(layout)) {}

  /// \return the layout this strategy interprets blocks with.
  const BlockLayout &GetBlockLayout() const { return layout_; }

  /// Format a freshly allocated block: clear bitmaps and version pointers.
  void InitializeRawBlock(DataTable *table, RawBlock *block, layout_version_t version) const;

  /// Reserve the next never-used slot in `block`.
  /// \return true and the new slot in `out` on success; false if the block's
  /// unused region is exhausted. The slot's allocation bit is NOT yet set —
  /// the caller publishes the tuple by calling SetAllocated after writing the
  /// version pointer and contents.
  bool Allocate(RawBlock *block, TupleSlot *out) const {
    // relaxed: seed for the CAS loop; the acq_rel compare_exchange below
    // synchronizes (and reloads the head on failure).
    uint32_t head = block->insert_head.load(std::memory_order_relaxed);
    while (head < layout_.NumSlots()) {
      if (block->insert_head.compare_exchange_weak(head, head + 1,
                                                   std::memory_order_acq_rel)) {
        *out = TupleSlot(block, head);
        return true;
      }
    }
    return false;
  }

  /// \return the block's allocation bitmap.
  common::RawConcurrentBitmap *AllocationBitmap(RawBlock *block) const {
    return common::RawConcurrentBitmap::Interpret(
        reinterpret_cast<byte *>(block) + layout_.AllocationBitmapOffset());
  }
  const common::RawConcurrentBitmap *AllocationBitmap(const RawBlock *block) const {
    return common::RawConcurrentBitmap::Interpret(const_cast<byte *>(
        reinterpret_cast<const byte *>(block) + layout_.AllocationBitmapOffset()));
  }

  /// \return true if `slot`'s allocation bit is set (tuple logically present
  /// in the newest version).
  bool Allocated(TupleSlot slot) const {
    return AllocationBitmap(slot.GetBlock())->Test(slot.GetOffset());
  }

  /// Publish a tuple: set the allocation bit.
  void SetAllocated(TupleSlot slot) const {
    AllocationBitmap(slot.GetBlock())->Set(slot.GetOffset(), true);
  }

  /// Logically remove a tuple: clear the allocation bit.
  void SetDeallocated(TupleSlot slot) const {
    AllocationBitmap(slot.GetBlock())->Set(slot.GetOffset(), false);
  }

  /// \return the validity (null) bitmap of column `col` in `block`.
  common::RawConcurrentBitmap *ColumnNullBitmap(RawBlock *block, col_id_t col) const {
    return common::RawConcurrentBitmap::Interpret(reinterpret_cast<byte *>(block) +
                                                  layout_.ColumnBitmapOffset(col));
  }

  /// \return start of column `col`'s value array in `block`.
  byte *ColumnStart(RawBlock *block, col_id_t col) const {
    return reinterpret_cast<byte *>(block) + layout_.ColumnValuesOffset(col);
  }
  const byte *ColumnStart(const RawBlock *block, col_id_t col) const {
    return reinterpret_cast<const byte *>(block) + layout_.ColumnValuesOffset(col);
  }

  /// \return address of `slot`'s value in column `col` (no null handling).
  byte *AccessWithoutNullCheck(TupleSlot slot, col_id_t col) const {
    return ColumnStart(slot.GetBlock(), col) +
           static_cast<size_t>(layout_.AttrSize(col)) * slot.GetOffset();
  }

  /// \return address of the value, or nullptr if it is null.
  byte *AccessWithNullCheck(TupleSlot slot, col_id_t col) const {
    if (!ColumnNullBitmap(slot.GetBlock(), col)->Test(slot.GetOffset())) return nullptr;
    return AccessWithoutNullCheck(slot, col);
  }

  /// Mark the value non-null and \return its address.
  byte *AccessForceNotNull(TupleSlot slot, col_id_t col) const {
    ColumnNullBitmap(slot.GetBlock(), col)->Set(slot.GetOffset(), true);
    return AccessWithoutNullCheck(slot, col);
  }

  /// Set the value of (`slot`, `col`) to null.
  void SetNull(TupleSlot slot, col_id_t col) const {
    ColumnNullBitmap(slot.GetBlock(), col)->Set(slot.GetOffset(), false);
  }

  /// \return true if the value is null.
  bool IsNull(TupleSlot slot, col_id_t col) const {
    return !ColumnNullBitmap(slot.GetBlock(), col)->Test(slot.GetOffset());
  }

  /// \return reference to the version-chain head pointer of `slot` (the
  /// invisible extra column of Section 3.1). All access must be atomic.
  std::atomic<UndoRecord *> &VersionPtr(TupleSlot slot) const {
    return reinterpret_cast<std::atomic<UndoRecord *> *>(
        reinterpret_cast<byte *>(slot.GetBlock()) + layout_.VersionPtrOffset())[slot.GetOffset()];
  }

 private:
  BlockLayout layout_;
};

}  // namespace mainline::storage
