#pragma once

#include <cstdint>
#include <vector>

#include "common/raw_bitmap.h"
#include "common/typedefs.h"

namespace mainline::storage {

/// Describes one column of a block layout.
struct ColumnSpec {
  /// Size in bytes of a value of this column. Variable-length columns store a
  /// 16-byte VarlenEntry. Fixed-length columns may be any multiple-of-8 size
  /// up to 4096 (large fused columns are used to simulate a row-store), or
  /// 1/2/4/8 for scalar types.
  uint16_t attr_size;
  /// True if this column stores VarlenEntry values.
  bool varlen = false;
};

/// Precomputed physical layout of a table's blocks (Section 3.2): the number
/// of slots per block, each column's size, and each column's byte offset from
/// the head of the block. Calculated once per table and shared by all blocks.
///
/// In-block layout, all regions 8-byte aligned:
///
///   [ header | allocation bitmap | version pointer column |
///     col 0 validity bitmap | col 0 values | col 1 validity bitmap | ... ]
///
/// The version pointer column is the "extra Arrow column invisible to
/// external readers" of Section 3.1.
class BlockLayout {
 public:
  /// Reserved header space at the head of every block (see RawBlock).
  static constexpr uint32_t kHeaderSize = 64;

  explicit BlockLayout(std::vector<ColumnSpec> columns);

  /// \return number of columns in the layout.
  uint16_t NumColumns() const { return static_cast<uint16_t>(columns_.size()); }

  /// \return size in bytes of values of column `col`.
  uint16_t AttrSize(col_id_t col) const { return columns_[col.UnderlyingValue()].attr_size; }

  /// \return true if column `col` stores variable-length values.
  bool IsVarlen(col_id_t col) const { return columns_[col.UnderlyingValue()].varlen; }

  /// \return true if any column is variable-length.
  bool HasVarlen() const { return has_varlen_; }

  /// \return number of tuple slots each block holds.
  uint32_t NumSlots() const { return num_slots_; }

  /// \return total bytes of a tuple's attributes (excluding bitmaps/version).
  uint32_t TupleSize() const { return tuple_size_; }

  /// \return byte offset (from block head) of the allocation bitmap.
  uint32_t AllocationBitmapOffset() const { return kHeaderSize; }

  /// \return byte offset of the version-pointer column.
  uint32_t VersionPtrOffset() const { return version_ptr_offset_; }

  /// \return byte offset of column `col`'s validity (null) bitmap.
  uint32_t ColumnBitmapOffset(col_id_t col) const {
    return column_offsets_[col.UnderlyingValue()];
  }

  /// \return byte offset of column `col`'s value array.
  uint32_t ColumnValuesOffset(col_id_t col) const {
    return column_offsets_[col.UnderlyingValue()] + common::BitmapSize(num_slots_);
  }

  /// \return all column ids, in layout order.
  std::vector<col_id_t> AllColumnIds() const;

  bool operator==(const BlockLayout &other) const {
    return num_slots_ == other.num_slots_ && column_offsets_ == other.column_offsets_;
  }

 private:
  /// Compute per-column offsets for a candidate slot count; \return the total
  /// footprint in bytes.
  uint32_t ComputeOffsets(uint32_t num_slots);

  std::vector<ColumnSpec> columns_;
  std::vector<uint32_t> column_offsets_;  // offset of each column's bitmap
  uint32_t version_ptr_offset_ = 0;
  uint32_t num_slots_ = 0;
  uint32_t tuple_size_ = 0;
  bool has_varlen_ = false;
};

}  // namespace mainline::storage
