#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "common/typedefs.h"
#include "storage/block_layout.h"

namespace mainline::storage {

/// A row-wise projection over a subset of a layout's columns: the unit of
/// early materialization for Select, of deltas for Update, and of
/// before-images in undo records (Section 3.1).
///
/// Memory layout (single contiguous allocation, externally provided):
///
///   [ size | num_cols | col_ids[] | value_offsets[] | null bitmap | values ]
///
/// Column ids are stored sorted ascending so that applying one projection
/// onto another is a linear merge. The null bitmap uses Arrow semantics: a
/// set bit means the value is present (non-null).
///
/// Never constructed directly — use ProjectedRowInitializer.
class ProjectedRow {
 public:
  ProjectedRow() = delete;
  DISALLOW_COPY_AND_MOVE(ProjectedRow)

  /// \return total size in bytes of this projection.
  uint32_t Size() const { return size_; }

  /// \return number of columns in this projection.
  uint16_t NumColumns() const { return num_cols_; }

  /// \return array of column ids (sorted ascending).
  col_id_t *ColumnIds() { return reinterpret_cast<col_id_t *>(varlen_contents_); }
  const col_id_t *ColumnIds() const {
    return reinterpret_cast<const col_id_t *>(varlen_contents_);
  }

  /// \return pointer to the value of the column at projection index `idx`,
  /// marking it non-null.
  byte *AccessForceNotNull(uint16_t idx) {
    SetNotNull(idx);
    return Value(idx);
  }

  /// \return pointer to the value, or nullptr if the value is null.
  byte *AccessWithNullCheck(uint16_t idx) { return IsNull(idx) ? nullptr : Value(idx); }
  const byte *AccessWithNullCheck(uint16_t idx) const {
    return IsNull(idx) ? nullptr : Value(idx);
  }

  /// \return pointer to the value slot regardless of the null bit.
  byte *AccessWithoutNullCheck(uint16_t idx) { return Value(idx); }
  const byte *AccessWithoutNullCheck(uint16_t idx) const { return Value(idx); }

  /// Mark the column at projection index `idx` null.
  void SetNull(uint16_t idx) { Bitmap()[idx / 8] &= static_cast<uint8_t>(~(1u << (idx % 8))); }

  /// Mark the column at projection index `idx` non-null.
  void SetNotNull(uint16_t idx) { Bitmap()[idx / 8] |= static_cast<uint8_t>(1u << (idx % 8)); }

  /// \return true if the column at projection index `idx` is null.
  bool IsNull(uint16_t idx) const { return (Bitmap()[idx / 8] & (1u << (idx % 8))) == 0; }

  /// Find the projection index of column `col` by binary search.
  /// \return index, or -1 if the column is not part of this projection.
  int32_t ProjectionIndex(col_id_t col) const {
    const col_id_t *ids = ColumnIds();
    int32_t lo = 0, hi = num_cols_ - 1;
    while (lo <= hi) {
      const int32_t mid = (lo + hi) / 2;
      if (ids[mid] == col) return mid;
      if (ids[mid] < col) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return -1;
  }

  /// Initialize `head` with the same shape (ids, offsets, size) as `other`,
  /// with all columns initially null. Used to build undo records that mirror
  /// an update's delta.
  static ProjectedRow *CopyProjectedRowLayout(byte *head, const ProjectedRow &other);

 private:
  friend class ProjectedRowInitializer;

  uint32_t *ValueOffsets() {
    return reinterpret_cast<uint32_t *>(varlen_contents_ + AlignedIdsSize(num_cols_));
  }
  const uint32_t *ValueOffsets() const {
    return reinterpret_cast<const uint32_t *>(varlen_contents_ + AlignedIdsSize(num_cols_));
  }
  uint8_t *Bitmap() {
    return reinterpret_cast<uint8_t *>(varlen_contents_) + AlignedIdsSize(num_cols_) +
           4 * num_cols_;
  }
  const uint8_t *Bitmap() const {
    return reinterpret_cast<const uint8_t *>(varlen_contents_) + AlignedIdsSize(num_cols_) +
           4 * num_cols_;
  }
  byte *Value(uint16_t idx) {
    return reinterpret_cast<byte *>(this) + ValueOffsets()[idx];
  }
  const byte *Value(uint16_t idx) const {
    return reinterpret_cast<const byte *>(this) + ValueOffsets()[idx];
  }

  static uint32_t AlignedIdsSize(uint16_t num_cols) {
    return (static_cast<uint32_t>(num_cols) * 2 + 3u) & ~3u;  // pad ids to 4-byte boundary
  }

  uint32_t size_;
  uint16_t num_cols_;
  uint16_t padding_;  // keeps varlen_contents_ 4-byte aligned at offset 8
  byte varlen_contents_[0];
};

static_assert(sizeof(ProjectedRow) == 8, "ProjectedRow header must be exactly 8 bytes");

/// Precomputes the size and internal offsets of a ProjectedRow over a given
/// set of columns, so rows can be stamped out with one memcpy-free pass.
class ProjectedRowInitializer {
 public:
  /// Create an initializer for the given columns of `layout`. `col_ids` need
  /// not be sorted; the projection sorts them.
  static ProjectedRowInitializer Create(const BlockLayout &layout, std::vector<col_id_t> col_ids);

  /// Create an initializer covering every column of `layout`.
  static ProjectedRowInitializer CreateFull(const BlockLayout &layout);

  /// \return bytes required for a ProjectedRow of this shape.
  uint32_t ProjectedRowSize() const { return size_; }

  /// \return number of columns in the projection.
  uint16_t NumColumns() const { return static_cast<uint16_t>(col_ids_.size()); }

  /// \return the (sorted) column ids of the projection.
  const std::vector<col_id_t> &ColumnIds() const { return col_ids_; }

  /// Write a ProjectedRow header into `head` (which must have
  /// ProjectedRowSize() bytes available). All columns start out null.
  /// \return the initialized row.
  ProjectedRow *InitializeRow(byte *head) const;

 private:
  ProjectedRowInitializer() = default;

  std::vector<col_id_t> col_ids_;
  std::vector<uint32_t> offsets_;
  uint32_t size_ = 0;
};

}  // namespace mainline::storage
