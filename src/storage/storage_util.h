#pragma once

#include <cstdint>
#include <cstring>

#include "common/tsan_annotations.h"
#include "common/typedefs.h"
#include "storage/projected_row.h"
#include "storage/tuple_access_strategy.h"
#include "storage/varlen_entry.h"

namespace mainline::storage {

/// Stateless helpers for moving attribute values between blocks and
/// projections, and for applying before-image deltas during version-chain
/// traversal.
class StorageUtil {
 public:
  StorageUtil() = delete;

  /// Copy a single value of `attr_size` bytes.
  static void CopyValue(uint16_t attr_size, byte *to, const byte *from) {
    std::memcpy(to, from, attr_size);
  }

  /// Copy the value of (`slot`, column at projection index `idx`) from the
  /// block into the projection, preserving nulls.
  static void CopyAttrIntoProjection(const TupleAccessStrategy &accessor, TupleSlot slot,
                                     ProjectedRow *to, uint16_t idx) {
    // Torn-read protocol: this read from the block intentionally races with
    // in-place writers. Select callers re-read the slot's version pointer
    // (seq_cst) AFTER copying and repair through the undo chain; Update's
    // before-image population is re-run whenever its version-pointer CAS
    // fails. Either way, bytes that raced are never used unrepaired.
    common::TsanIgnoreReadsScope torn_read;
    const col_id_t col = to->ColumnIds()[idx];
    const byte *from = accessor.AccessWithNullCheck(slot, col);
    if (from == nullptr) {
      to->SetNull(idx);
    } else {
      CopyValue(accessor.GetBlockLayout().AttrSize(col), to->AccessForceNotNull(idx), from);
    }
  }

  /// Copy the value at projection index `idx` from the projection into the
  /// block, preserving nulls.
  static void CopyAttrFromProjection(const TupleAccessStrategy &accessor, TupleSlot slot,
                                     const ProjectedRow &from, uint16_t idx) {
    const col_id_t col = from.ColumnIds()[idx];
    const byte *value = from.AccessWithNullCheck(idx);
    if (value == nullptr) {
      accessor.SetNull(slot, col);
    } else {
      CopyValue(accessor.GetBlockLayout().AttrSize(col),
                accessor.AccessForceNotNull(slot, col), value);
    }
  }

  /// Apply the before-image `delta` onto `buffer`: for every column present
  /// in both projections, overwrite `buffer`'s value (and null bit) with
  /// `delta`'s. Both column id arrays are sorted, so this is a linear merge.
  static void ApplyDelta(const BlockLayout &layout, const ProjectedRow &delta,
                         ProjectedRow *buffer) {
    const col_id_t *delta_ids = delta.ColumnIds();
    const col_id_t *buffer_ids = buffer->ColumnIds();
    uint16_t d = 0, b = 0;
    while (d < delta.NumColumns() && b < buffer->NumColumns()) {
      if (delta_ids[d] == buffer_ids[b]) {
        const byte *value = delta.AccessWithNullCheck(d);
        if (value == nullptr) {
          buffer->SetNull(b);
        } else {
          CopyValue(layout.AttrSize(delta_ids[d]), buffer->AccessForceNotNull(b), value);
        }
        d++;
        b++;
      } else if (delta_ids[d] < buffer_ids[b]) {
        d++;
      } else {
        b++;
      }
    }
  }

  /// Replace every non-inlined varlen value in `row` with a freshly
  /// allocated owned copy. Needed when a row read from one slot is written
  /// to another: the delete/before-image keeps the original buffers, so the
  /// new tuple needs its own (Section 4.4). The copies are reclaimed through
  /// the writing transaction's loose-varlen list if it aborts.
  static void DeepCopyVarlens(const BlockLayout &layout, ProjectedRow *row) {
    for (uint16_t i = 0; i < row->NumColumns(); i++) {
      if (!layout.IsVarlen(row->ColumnIds()[i])) continue;
      byte *value = row->AccessWithNullCheck(i);
      if (value == nullptr) continue;
      auto *entry = reinterpret_cast<VarlenEntry *>(value);
      if (entry->IsInlined()) continue;
      auto *copy = new byte[entry->Size()];
      std::memcpy(copy, entry->Content(), entry->Size());
      *entry = VarlenEntry::Create(copy, entry->Size(), true);
    }
  }

  /// Free every owned out-of-line varlen buffer referenced by `delta`.
  /// Used by the GC when reclaiming undo records and by abort cleanup.
  static void DeallocateVarlensInDelta(const BlockLayout &layout, const ProjectedRow &delta) {
    for (uint16_t i = 0; i < delta.NumColumns(); i++) {
      if (!layout.IsVarlen(delta.ColumnIds()[i])) continue;
      const byte *value = delta.AccessWithNullCheck(i);
      if (value == nullptr) continue;
      const auto *entry = reinterpret_cast<const VarlenEntry *>(value);
      if (entry->NeedReclaim()) delete[] entry->Content();
    }
  }
};

}  // namespace mainline::storage
