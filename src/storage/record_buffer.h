#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/object_pool.h"
#include "common/typedefs.h"
#include "storage/storage_defs.h"

namespace mainline::storage {

/// A fixed-size (4096-byte) chunk of buffer memory. Undo and redo buffers are
/// linked lists of these segments (Section 3.1): version chains point
/// physically into them, so a naive realloc-style growth is impossible —
/// instead, full buffers grow by chaining additional segments.
class BufferSegment {
 public:
  /// \return true if `size` more bytes fit in this segment.
  bool HasBytesLeft(uint32_t size) const { return size_ + size <= kBufferSegmentSize; }

  /// Reserve `size` bytes (rounded up to an 8-byte multiple so records stay
  /// aligned). Caller must have checked HasBytesLeft.
  byte *Reserve(uint32_t size) {
    MAINLINE_ASSERT(HasBytesLeft(size), "buffer segment overflow");
    byte *result = bytes_ + size_;
    size_ += (size + 7u) & ~7u;
    return result;
  }

  /// Reset the segment for reuse.
  void Reset() { size_ = 0; }

 private:
  alignas(8) byte bytes_[kBufferSegmentSize];
  uint32_t size_ = 0;
};

/// Allocator for buffer segments, for use with common::ObjectPool.
class BufferSegmentAllocator {
 public:
  BufferSegment *New() {
    auto *result = new BufferSegment;
    result->Reset();
    return result;
  }
  void Reuse(BufferSegment *segment) { segment->Reset(); }
  void Delete(BufferSegment *segment) { delete segment; }
};

/// Global pool of buffer segments shared by all transactions.
using RecordBufferSegmentPool = common::ObjectPool<BufferSegment, BufferSegmentAllocator>;

/// An append-only arena of chained buffer segments. Returned entry pointers
/// remain valid for the buffer's lifetime (segments are never moved).
class RecordBuffer {
 public:
  explicit RecordBuffer(RecordBufferSegmentPool *pool) : pool_(pool) {}
  DISALLOW_COPY_AND_MOVE(RecordBuffer)

  ~RecordBuffer() { Release(); }

  /// Reserve space for a new entry of `size` bytes (must fit in one segment).
  byte *NewEntry(uint32_t size) {
    MAINLINE_ASSERT(size <= kBufferSegmentSize, "record larger than a buffer segment");
    if (segments_.empty() || !segments_.back()->HasBytesLeft(size)) {
      segments_.push_back(pool_->Get());
    }
    return segments_.back()->Reserve(size);
  }

  /// \return true if no entries were ever reserved.
  bool Empty() const { return segments_.empty(); }

  /// Return all segments to the pool.
  void Release() {
    for (BufferSegment *segment : segments_) pool_->Release(segment);
    segments_.clear();
  }

 private:
  RecordBufferSegmentPool *pool_;
  std::vector<BufferSegment *> segments_;
};

}  // namespace mainline::storage
