#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/typedefs.h"

namespace mainline::storage {

/// How a column of a frozen block is physically represented for Arrow
/// readers (Section 4.4: the gathering phase can emit alternative formats).
enum class ArrowColumnType : uint8_t {
  /// Fixed-length values exposed in place from block storage.
  kFixed = 0,
  /// Variable-length values gathered into a contiguous values buffer with an
  /// int32 offsets array (canonical Arrow varbinary).
  kGatheredVarlen,
  /// Dictionary-compressed: int32 codes per record plus a sorted dictionary
  /// (the Parquet/ORC-style alternative format).
  kDictionaryCompressed,
};

/// An Arrow-compliant (values, offsets) buffer pair for one variable-length
/// column of one block. Owned by the block's ArrowBlockMetadata; freed via a
/// deferred action when the block is re-gathered or released.
struct ArrowVarlenBuffer {
  std::unique_ptr<byte[]> values;
  std::unique_ptr<int32_t[]> offsets;  // num_records + 1 entries
  uint64_t values_size = 0;
};

/// Per-column Arrow metadata of a frozen block.
struct ArrowColumnInfo {
  ArrowColumnType type = ArrowColumnType::kFixed;
  uint32_t null_count = 0;
  /// Gathered values (kGatheredVarlen) or unused.
  ArrowVarlenBuffer varlen;
  /// Dictionary codes, one per record (kDictionaryCompressed) or unused.
  std::unique_ptr<int32_t[]> indices;
  /// Dictionary words, sorted ascending (kDictionaryCompressed) or unused.
  ArrowVarlenBuffer dictionary;
  uint32_t dictionary_size = 0;
};

/// Metadata the gathering phase computes for a frozen block (null counts,
/// gathered varlen buffers, dictionaries). Stored out-of-block, pointed to by
/// the RawBlock header. Immutable once published.
class ArrowBlockMetadata {
 public:
  ArrowBlockMetadata(uint32_t num_records, uint16_t num_columns)
      : num_records_(num_records), columns_(num_columns) {}

  DISALLOW_COPY_AND_MOVE(ArrowBlockMetadata)

  /// \return number of (contiguous, allocated) records the block holds.
  uint32_t NumRecords() const { return num_records_; }

  ArrowColumnInfo &Column(uint16_t idx) { return columns_[idx]; }
  const ArrowColumnInfo &Column(uint16_t idx) const { return columns_[idx]; }

 private:
  uint32_t num_records_;
  std::vector<ArrowColumnInfo> columns_;
};

}  // namespace mainline::storage
